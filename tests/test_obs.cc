// Conformance tests for the observability layer: exact merge semantics of
// the striped counters under contention (run under TSan via the obs-tsan
// preset), histogram bucket-edge placement, TraceRing wraparound/loss
// accounting, and the snapshot wire/JSON round trip.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/codec.h"
#include "util/fs.h"
#include "util/strings.h"

namespace ibox {
namespace {

// ------------------------------------------------------------- counters --

TEST(Counter, StartsAtZeroAndMerges) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, MergeUnderContentionIsExact) {
  // 8 writer threads x 10k increments each; a reader snapshots while the
  // writers run. The reads must be data-race-free (TSan) and the final
  // merged value exact — striping must lose nothing.
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&c] {
      for (uint64_t n = 0; n < kPerThread; ++n) c.inc();
    });
  }
  // Concurrent reads: monotone partial sums, never garbage.
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t now = c.value();
    EXPECT_GE(now, last);
    EXPECT_LE(now, kThreads * kPerThread);
    last = now;
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, MovesBothWaysAndTracksMax) {
  Gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.add_fetch(4), 7);
  g.update_max(100);
  g.set(50);
  g.update_max(10);  // below current level: no effect
  EXPECT_EQ(g.value(), 50);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
}

TEST(Registry, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_NE(&registry.counter("y"), &a);
}

TEST(Registry, SnapshotWhileWritersRun) {
  // Registration, writes, and snapshots from different threads must be
  // TSan-clean, and the post-join snapshot exact.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&registry] {
      Counter& ops = registry.counter("ops");
      Histogram& lat = registry.histogram("lat_us");
      for (uint64_t n = 0; n < kPerThread; ++n) {
        ops.inc();
        lat.observe(n % 512);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.snapshot();
    EXPECT_LE(snap.counter("ops"), kThreads * kPerThread);
  }
  for (auto& t : workers) t.join();
  MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("ops"), kThreads * kPerThread);
  const HistogramSnapshot* lat = snap.histogram("lat_us");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, kThreads * kPerThread);
}

// ----------------------------------------------------------- histograms --

TEST(Histogram, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  h.observe(0);     // bucket 0
  h.observe(10);    // bucket 0: bounds are inclusive
  h.observe(11);    // bucket 1
  h.observe(100);   // bucket 1
  h.observe(101);   // bucket 2
  h.observe(1000);  // bucket 2
  h.observe(1001);  // overflow
  const std::vector<uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.total_count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101 + 1000 + 1001);
}

TEST(Histogram, DefaultLatencyBoundsAreAscending) {
  const std::vector<uint64_t>& bounds = Histogram::default_latency_bounds_us();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");  // empty bounds = default
  EXPECT_EQ(h.bounds(), bounds);
}

TEST(Histogram, ObserveUnderContentionIsExact) {
  Histogram h({1, 2, 4, 8});
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&h] {
      for (uint64_t n = 0; n < kPerThread; ++n) h.observe(n % 16);
    });
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_LE(h.total_count(), kThreads * kPerThread);
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(h.total_count(), kThreads * kPerThread);
  // n % 16 spreads evenly: 0..1 -> b0, 2 -> b1, 3..4 -> b2, 5..8 -> b3,
  // 9..15 -> overflow.
  const std::vector<uint64_t> counts = h.counts();
  const uint64_t per_value = kThreads * kPerThread / 16;
  EXPECT_EQ(counts[0], 2 * per_value);
  EXPECT_EQ(counts[1], 1 * per_value);
  EXPECT_EQ(counts[2], 2 * per_value);
  EXPECT_EQ(counts[3], 4 * per_value);
  EXPECT_EQ(counts[4], 7 * per_value);
}

// ------------------------------------------------------------ trace ring --

TEST(TraceRing, KeepsEverythingBelowCapacity) {
  TraceRing ring(8);
  ring.record(TraceKind::kSyscallDenied, EPERM, 42, "openat");
  ring.record(TraceKind::kCacheHit, 0, 0, "vfs");
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].kind, TraceKind::kSyscallDenied);
  EXPECT_EQ(events[0].code, EPERM);
  EXPECT_EQ(events[0].value, 42u);
  EXPECT_EQ(events[0].detail, "openat");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(ring.recorded(), 2u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDrops) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.record(TraceKind::kRetry, i, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, contiguous sequence numbers, the newest 4 of 10.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6u + i);
    EXPECT_EQ(events[i].code, static_cast<int32_t>(6 + i));
  }
}

TEST(TraceRing, JsonNamesEveryKind) {
  TraceRing ring(64);
  ring.record(TraceKind::kFaultInjected, 0, 0, "drop");
  ring.record(TraceKind::kAuthHandshake, 0, 0, "unix:alice");
  const std::string json = ring.to_json();
  EXPECT_NE(json.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(json.find("\"auth_handshake\""), std::string::npos);
  EXPECT_NE(json.find("unix:alice"), std::string::npos);
}

TEST(TraceRing, RecordFromManyThreadsIsLossAccounted) {
  TraceRing ring(16);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 1'000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    writers.emplace_back([&ring] {
      for (uint64_t n = 0; n < kPerThread; ++n) {
        ring.record(TraceKind::kRpc, 1, n);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(ring.recorded(), kThreads * kPerThread);
  EXPECT_EQ(ring.dropped(), kThreads * kPerThread - ring.capacity());
  EXPECT_EQ(ring.snapshot().size(), ring.capacity());
}

// ------------------------------------------------------------ snapshots --

MetricsSnapshot populated_snapshot() {
  MetricsRegistry registry;
  registry.counter("a.hits").add(7);
  registry.counter("a.misses").add(3);
  registry.gauge("depth").set(-2);
  Histogram& h = registry.histogram("lat", {1, 10});
  h.observe(0);
  h.observe(5);
  h.observe(100);
  return registry.snapshot();
}

TEST(MetricsSnapshot, CodecRoundTripIsIdentity) {
  const MetricsSnapshot snap = populated_snapshot();
  BufWriter writer;
  snap.encode(writer);
  BufReader reader(writer.data());
  auto decoded = MetricsSnapshot::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(reader.at_end());
  EXPECT_EQ(*decoded, snap);
  EXPECT_EQ(decoded->counter("a.hits"), 7u);
  EXPECT_EQ(decoded->gauge("depth"), -2);
  const HistogramSnapshot* lat = decoded->histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 3u);
  EXPECT_EQ(lat->sum, 105u);
  ASSERT_EQ(lat->counts.size(), 3u);
  EXPECT_EQ(lat->counts[2], 1u);  // overflow bucket
}

TEST(MetricsSnapshot, DecodeRejectsTruncation) {
  const MetricsSnapshot snap = populated_snapshot();
  BufWriter writer;
  snap.encode(writer);
  const std::string wire = writer.data();
  BufReader reader(std::string_view(wire).substr(0, wire.size() / 2));
  auto decoded = MetricsSnapshot::Decode(reader);
  EXPECT_FALSE(decoded.ok());
}

TEST(MetricsSnapshot, MissingNamesReadAsZero) {
  const MetricsSnapshot snap = populated_snapshot();
  EXPECT_EQ(snap.counter("no.such"), 0u);
  EXPECT_EQ(snap.gauge("no.such"), 0);
  EXPECT_EQ(snap.histogram("no.such"), nullptr);
}

TEST(MetricsSnapshot, JsonIsDeterministicAndNamed) {
  const MetricsSnapshot a = populated_snapshot();
  const MetricsSnapshot b = populated_snapshot();
  EXPECT_EQ(a.to_json(), b.to_json());
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"a.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

// ------------------------------------------------------------ trace ids --

TEST(TraceId, MintedIdsAreNonzeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = mint_trace_id();
    EXPECT_NE(id, 0u);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(TraceRing, SnapshotFiltersByTraceId) {
  TraceRing ring(16);
  ring.record(TraceKind::kRpc, 1, 10, "stat", 111);
  ring.record(TraceKind::kRpc, 2, 20, "open", 222);
  ring.record(TraceKind::kAclDecision, 0, 0, "/work", 111);
  ring.record(TraceKind::kRpc, 3, 30, "read");  // unstamped

  EXPECT_EQ(ring.snapshot().size(), 4u);  // zero filter: everything
  const std::vector<TraceEvent> match = ring.snapshot(111);
  ASSERT_EQ(match.size(), 2u);
  EXPECT_EQ(match[0].detail, "stat");
  EXPECT_EQ(match[1].detail, "/work");
  EXPECT_EQ(match[0].trace_id, 111u);

  const std::string json = ring.to_json(222);
  EXPECT_NE(json.find("\"open\""), std::string::npos);
  EXPECT_EQ(json.find("\"stat\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":222"), std::string::npos);
}

// ------------------------------------------------------------ quantiles --

HistogramSnapshot histogram_with(const std::vector<uint64_t>& bounds,
                                 const std::vector<double>& values) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("h", bounds);
  for (double v : values) h.observe(static_cast<uint64_t>(v));
  return *registry.snapshot().histogram("h");
}

TEST(Quantile, EmptyHistogramReadsZero) {
  const HistogramSnapshot h = histogram_with({10, 100}, {});
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_EQ(histogram_quantile(h, 0.99), 0.0);
}

TEST(Quantile, InterpolatesInsideBucket) {
  // 100 observations spread evenly through the (0, 100] bucket: the rank-k
  // estimate interpolates linearly across the bucket width.
  std::vector<double> values(100);
  for (int i = 0; i < 100; ++i) values[static_cast<size_t>(i)] = i;
  const HistogramSnapshot h = histogram_with({100, 1000}, values);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.95), 95.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 100.0);
}

TEST(Quantile, BucketEdgeCountsAreInclusive) {
  // Observations exactly on a bound land in that bound's bucket (inclusive
  // upper edge, matching Histogram::observe); a quantile that needs the
  // whole bucket reports the upper edge.
  const HistogramSnapshot h = histogram_with({10, 100}, {10, 10, 10, 10});
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 10.0);
  // Rank 1 of 4 needs a quarter of the only populated bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.25), 2.5);
}

TEST(Quantile, OverflowBucketClampsToLastFiniteBound) {
  const HistogramSnapshot h = histogram_with({10, 100}, {5000, 6000, 7000});
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 100.0);
}

TEST(Quantile, MixedBucketsMatchExactCounts) {
  // 8 observations: 4 in (0,10], 2 in (10,100], 2 overflow. p50 needs
  // rank 4 -> exactly fills bucket 0 -> its upper edge. p75 needs rank 6
  // -> second of 2 in bucket 1 -> its upper edge. p99 -> overflow clamp.
  const HistogramSnapshot h =
      histogram_with({10, 100}, {1, 2, 3, 4, 50, 60, 500, 600});
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.75), 100.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 100.0);
}

// ----------------------------------------------------- prometheus text --

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("chirp.rpc.latency_us"),
            "chirp_rpc_latency_us");
  EXPECT_EQ(prometheus_name("acl:cache.hits"), "acl:cache_hits");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
}

TEST(Prometheus, RendersCountersGaugesAndHistogram) {
  MetricsRegistry registry;
  registry.counter("chirp.server.requests").add(42);
  registry.gauge("chirp.server.queue_depth").set(-3);
  Histogram& h = registry.histogram("chirp.rpc.latency_us", {10, 100});
  for (int i = 0; i < 4; ++i) h.observe(5);   // (0,10]
  h.observe(50);                              // (10,100]
  h.observe(5000);                            // overflow
  const std::string text = render_prometheus(registry.snapshot());

  EXPECT_NE(text.find("# TYPE chirp_server_requests counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("chirp_server_requests 42\n"), std::string::npos);
  EXPECT_NE(text.find("chirp_server_queue_depth -3\n"), std::string::npos);
  EXPECT_NE(
      text.find("chirp_rpc_latency_us_bucket{le=\"10\"} 4\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("chirp_rpc_latency_us_bucket{le=\"100\"} 5\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("chirp_rpc_latency_us_bucket{le=\"+Inf\"} 6\n"),
      std::string::npos);
  EXPECT_NE(text.find("chirp_rpc_latency_us_count 6\n"), std::string::npos);
  EXPECT_NE(text.find("chirp_rpc_latency_us_sum 5070\n"),
            std::string::npos);
  // Companion quantile gauges, matching the exact-count estimates.
  EXPECT_NE(text.find("chirp_rpc_latency_us_p50 7.5\n"), std::string::npos);
  EXPECT_NE(text.find("chirp_rpc_latency_us_p99 100\n"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  for (const auto& line : split(text, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

// -------------------------------------------------------- exporter ------

TEST(PeriodicExporter, WritesAtomicSnapshotsAndFinalOnStop) {
  TempDir tmp("exporter");
  const std::string path = tmp.sub("metrics.prom");
  std::atomic<int> renders{0};
  PeriodicExporter::Options options;
  options.path = path;
  options.interval_ms = 3600 * 1000;  // only explicit writes
  PeriodicExporter exporter(options, [&renders] {
    renders.fetch_add(1);
    return std::string("content ") + std::to_string(renders.load()) + "\n";
  });
  ASSERT_TRUE(exporter.write_once().ok());
  const uint64_t after_first = exporter.writes();
  EXPECT_GE(after_first, 1u);
  auto body = read_file(path);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("content"), std::string::npos);

  exporter.stop();  // final snapshot
  EXPECT_GT(exporter.writes(), after_first);
  EXPECT_TRUE(exporter.last_error().ok());
  exporter.stop();  // idempotent
}

TEST(PeriodicExporter, PeriodicWritesHappenWithoutPrompting) {
  TempDir tmp("exporter");
  PeriodicExporter::Options options;
  options.path = tmp.sub("metrics.prom");
  options.interval_ms = 5;
  PeriodicExporter exporter(options, [] { return std::string("x\n"); });
  for (int i = 0; i < 200 && exporter.writes() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(exporter.writes(), 2u);
  exporter.stop();
}

TEST(PeriodicExporter, SurfacesWriteFailure) {
  PeriodicExporter::Options options;
  options.path = "/nonexistent-dir-xyz/metrics.prom";
  options.interval_ms = 3600 * 1000;
  PeriodicExporter exporter(options, [] { return std::string("x\n"); });
  EXPECT_FALSE(exporter.write_once().ok());
  EXPECT_FALSE(exporter.last_error().ok());
  exporter.stop();
}

}  // namespace
}  // namespace ibox
