// End-to-end identity-box tests: real processes under the ptrace
// supervisor, exercising the paper's semantics (sections 3, 5, 6).
#include "sandbox/supervisor.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "box/box_context.h"
#include "util/fs.h"
#include "util/strings.h"

namespace ibox {
namespace {

Identity id(const std::string& text) { return *Identity::Parse(text); }

// Runs a /bin/sh command inside a fresh box and captures stdout.
struct BoxRun {
  int exit_code = -1;
  std::string out;
  SupervisorStats stats;
};

class SandboxTest : public ::testing::Test {
 protected:
  SandboxTest() : state_("sandboxtest") {}

  BoxRun run_in_box(const Identity& who, const std::string& command,
                    SandboxConfig config = {},
                    BoxOptions options = BoxOptions{}) {
    BoxRun result;
    if (options.state_dir.empty()) {
      options.state_dir = state_.sub("box-" + std::to_string(counter_++));
      (void)make_dirs(options.state_dir);
    }
    auto box = BoxContext::Create(who, options);
    if (!box.ok()) {
      ADD_FAILURE() << "box creation failed: " << box.error().message();
      return result;
    }
    UniqueFd out_fd(::memfd_create("test-out", 0));
    ProcessRegistry registry;
    Supervisor supervisor(**box, registry, config);
    Supervisor::Stdio stdio{-1, out_fd.get(), -1};
    auto exit_code =
        supervisor.run({"/bin/sh", "-c", command}, {}, stdio);
    if (!exit_code.ok()) {
      ADD_FAILURE() << "run failed: " << exit_code.error().message();
      return result;
    }
    result.exit_code = *exit_code;
    result.stats = supervisor.stats();
    char buf[1 << 16];
    off_t off = 0;
    while (true) {
      ssize_t n = ::pread(out_fd.get(), buf, sizeof(buf), off);
      if (n <= 0) break;
      result.out.append(buf, static_cast<size_t>(n));
      off += n;
    }
    return result;
  }

  TempDir state_;
  int counter_ = 0;
};

TEST_F(SandboxTest, ExitCodePropagates) {
  EXPECT_EQ(run_in_box(id("Freddy"), "exit 7").exit_code, 7);
  EXPECT_EQ(run_in_box(id("Freddy"), "true").exit_code, 0);
}

TEST_F(SandboxTest, StdoutCaptured) {
  auto run = run_in_box(id("Freddy"), "echo boxed-hello");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "boxed-hello\n");
}

TEST_F(SandboxTest, WhoamiSeesIdentity) {
  // Figure 2: "the identity box causes the Unix account name to correspond
  // to that of the identity string."
  auto run = run_in_box(id("Freddy"), "whoami");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "Freddy\n");
}

TEST_F(SandboxTest, UsernameSurface) {
  auto run = run_in_box(id("globus:/O=X/CN=Fred"), "cat /ibox/username");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "globus:/O=X/CN=Fred\n");
}

TEST_F(SandboxTest, Figure2SecretDeniedHomeWritable) {
  const std::string outside = state_.sub("outside");
  ASSERT_TRUE(make_dirs(outside).ok());
  ASSERT_TRUE(write_file(outside + "/secret", "classified", 0600).ok());

  auto denied = run_in_box(id("Freddy"), "cat " + outside + "/secret");
  EXPECT_NE(denied.exit_code, 0);
  EXPECT_EQ(denied.out.find("classified"), std::string::npos);
  EXPECT_GT(denied.stats.denials, 0u);

  auto allowed = run_in_box(
      id("Freddy"), "echo mydata > $HOME/mydata && cat $HOME/mydata");
  EXPECT_EQ(allowed.exit_code, 0);
  EXPECT_EQ(allowed.out, "mydata\n");
}

TEST_F(SandboxTest, AclGovernedSharing) {
  const std::string shared = state_.sub("shared");
  ASSERT_TRUE(make_dirs(shared).ok());
  ASSERT_TRUE(write_file(shared + "/.__acl",
                         "Freddy rwlax\nGeorge rl\n")
                  .ok());
  ASSERT_TRUE(write_file(shared + "/data", "common knowledge", 0600).ok());

  // George may read (ACL rl) although the Unix mode is 0600.
  auto george = run_in_box(id("George"), "cat " + shared + "/data");
  EXPECT_EQ(george.exit_code, 0);
  EXPECT_EQ(george.out, "common knowledge");
  // But not write.
  auto george_w =
      run_in_box(id("George"), "echo x >> " + shared + "/data");
  EXPECT_NE(george_w.exit_code, 0);
  // Freddy may write.
  auto freddy =
      run_in_box(id("Freddy"), "echo more >> " + shared + "/data");
  EXPECT_EQ(freddy.exit_code, 0);
}

TEST_F(SandboxTest, ListingHidesAclFile) {
  const std::string dir = state_.sub("listing");
  ASSERT_TRUE(make_dirs(dir).ok());
  ASSERT_TRUE(write_file(dir + "/.__acl", "Freddy rwlax\n").ok());
  ASSERT_TRUE(write_file(dir + "/visible.txt", "x").ok());
  auto run = run_in_box(id("Freddy"), "ls " + dir);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("visible.txt"), std::string::npos);
  EXPECT_EQ(run.out.find(".__acl"), std::string::npos);
}

TEST_F(SandboxTest, LsLongFormatWorks) {
  // `ls -l` exercises statx, getdents64, readlink and localtime.
  const std::string dir = state_.sub("lslong");
  ASSERT_TRUE(make_dirs(dir).ok());
  ASSERT_TRUE(write_file(dir + "/.__acl", "Freddy rwlax\n").ok());
  ASSERT_TRUE(write_file(dir + "/file.bin", std::string(1234, 'x')).ok());
  auto run = run_in_box(id("Freddy"), "ls -l " + dir);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("file.bin"), std::string::npos);
  EXPECT_NE(run.out.find("1234"), std::string::npos);
}

TEST_F(SandboxTest, MkdirReserveCreatesPrivateNamespace) {
  // Section 4's /work example, driven through real mkdir(1).
  const std::string root = state_.sub("grid");
  ASSERT_TRUE(make_dirs(root).ok());
  ASSERT_TRUE(
      write_file(root + "/.__acl", "globus:* v(rwlax)\n").ok());

  auto fred = run_in_box(id("globus:/O=U/CN=Fred"),
                         "mkdir " + root + "/work && echo made");
  EXPECT_EQ(fred.exit_code, 0);
  EXPECT_EQ(fred.out, "made\n");

  // The fresh ACL names only Fred: George cannot enter.
  auto george = run_in_box(id("globus:/O=U/CN=George"),
                           "ls " + root + "/work");
  EXPECT_NE(george.exit_code, 0);
  // And Fred has full rights there.
  auto fred2 = run_in_box(id("globus:/O=U/CN=Fred"),
                          "echo out > " + root + "/work/out.dat && cat " +
                              root + "/work/out.dat");
  EXPECT_EQ(fred2.exit_code, 0);
  EXPECT_EQ(fred2.out, "out\n");
}

TEST_F(SandboxTest, SignalsToOutsideWorldDenied) {
  // kill -0 1: probing init. Inside a box, signals may only target
  // processes with the same identity.
  auto run = run_in_box(id("Freddy"), "kill -0 1 2>/dev/null; echo $?");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "1\n");  // kill failed
}

TEST_F(SandboxTest, SignalsToSelfAllowed) {
  auto run = run_in_box(id("Freddy"), "kill -0 $$ && echo self-ok");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "self-ok\n");
}

TEST_F(SandboxTest, SetuidRefused) {
  // No low-level identity changes inside the box. sh has no setuid
  // builtin; use a child that tries chown (refused with EPERM).
  const std::string dir = state_.sub("chowntest");
  ASSERT_TRUE(make_dirs(dir, 0777).ok());
  ASSERT_TRUE(write_file(dir + "/f", "x", 0666).ok());
  auto run = run_in_box(id("Freddy"),
                        "chown 0:0 " + dir + "/f 2>/dev/null; echo $?");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "1\n");
}

TEST_F(SandboxTest, PipelinesAndRedirections) {
  auto run = run_in_box(
      id("Freddy"),
      "echo alpha beta | tr a-z A-Z | sed s/BETA/GAMMA/ > $HOME/o && "
      "cat $HOME/o");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "ALPHA GAMMA\n");
}

TEST_F(SandboxTest, ProcessTreeCounted) {
  auto run = run_in_box(id("Freddy"), "(true); (true); true");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_GE(run.stats.processes_seen, 3u);
}

TEST_F(SandboxTest, HardLinkTheftDenied) {
  const std::string closed = state_.sub("closed");
  ASSERT_TRUE(make_dirs(closed).ok());
  ASSERT_TRUE(write_file(closed + "/.__acl", "Admin rwlax\n").ok());
  ASSERT_TRUE(write_file(closed + "/private", "sensitive", 0600).ok());
  auto run = run_in_box(
      id("Freddy"),
      "ln " + closed + "/private $HOME/steal 2>/dev/null; echo $?");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, "1\n");
}

TEST_F(SandboxTest, CwdTracking) {
  const std::string dir = state_.sub("cwd/inner");
  ASSERT_TRUE(make_dirs(dir).ok());
  SandboxConfig config;
  config.initial_cwd = state_.sub("cwd");
  auto run = run_in_box(id("Freddy"), "cd inner && pwd", config);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(run.out, dir + "\n");
}

TEST_F(SandboxTest, ExecDeniedWithoutXRight) {
  const std::string dir = state_.sub("noexec");
  ASSERT_TRUE(make_dirs(dir).ok());
  ASSERT_TRUE(write_file(dir + "/.__acl", "Freddy rwl\n").ok());
  ASSERT_TRUE(
      write_file(dir + "/prog.sh", "#!/bin/sh\necho ran\n", 0755).ok());
  auto run = run_in_box(id("Freddy"), dir + "/prog.sh; echo rc=$?");
  EXPECT_EQ(run.out.find("ran"), std::string::npos);
  // With the x right added, it runs.
  ASSERT_TRUE(write_file(dir + "/.__acl", "Freddy rwlx\n").ok());
  auto run2 = run_in_box(id("Freddy"), dir + "/prog.sh");
  EXPECT_EQ(run2.exit_code, 0);
  EXPECT_EQ(run2.out, "ran\n");
}

TEST_F(SandboxTest, AuditLogRecordsDenials) {
  BoxOptions options;
  options.state_dir = state_.sub("audited");
  ASSERT_TRUE(make_dirs(options.state_dir).ok());
  options.audit_log_path = state_.sub("audited/audit.log");
  const std::string outside = state_.sub("aud-secret");
  ASSERT_TRUE(make_dirs(outside).ok());
  ASSERT_TRUE(write_file(outside + "/s", "x", 0600).ok());

  auto run = run_in_box(id("JoeHacker"), "cat " + outside + "/s",
                        SandboxConfig{}, options);
  EXPECT_NE(run.exit_code, 0);

  auto records = AuditLog::Load(options.audit_log_path);
  ASSERT_TRUE(records.ok());
  bool found_denial = false;
  for (const auto& record : *records) {
    if (record.operation == "open" && record.errno_code == EACCES &&
        record.object == outside + "/s") {
      found_denial = true;
    }
  }
  EXPECT_TRUE(found_denial);
}

// Data-path sweep: the same workload must behave identically through
// peek/poke, process_vm, the channel, and the paper's mixed mode.
class DataPathTest : public SandboxTest,
                     public ::testing::WithParamInterface<DataPath> {};

TEST_P(DataPathTest, ReadWriteRoundTrip) {
  SandboxConfig config;
  config.data_path = GetParam();
  const std::string dir = state_.sub("dp");
  (void)make_dirs(dir);
  ASSERT_TRUE(write_file(dir + "/.__acl", "Freddy rwlax\n").ok());
  // 200 KB of data: large enough to exercise the bulk path.
  std::string data;
  for (int i = 0; i < 200000; ++i) data += std::to_string(i % 10);
  ASSERT_TRUE(write_file(dir + "/in.bin", data).ok());

  auto run = run_in_box(
      id("Freddy"),
      "cat " + dir + "/in.bin > " + dir + "/out.bin && cmp -s " + dir +
          "/in.bin " + dir + "/out.bin && wc -c < " + dir + "/out.bin",
      config);
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_EQ(trim(run.out), "200000");

  if (GetParam() == DataPath::kChannel) {
    EXPECT_GT(run.stats.bytes_via_channel, 0u);
  }
  if (GetParam() == DataPath::kProcessVm) {
    // File IO moves by process_vm; the channel still serves mmap (libc).
    EXPECT_GT(run.stats.bytes_via_processvm, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPaths, DataPathTest,
                         ::testing::Values(DataPath::kPaper,
                                           DataPath::kPeekPoke,
                                           DataPath::kProcessVm,
                                           DataPath::kChannel),
                         [](const auto& info) {
                           switch (info.param) {
                             case DataPath::kPaper: return "Paper";
                             case DataPath::kPeekPoke: return "PeekPoke";
                             case DataPath::kProcessVm: return "ProcessVm";
                             case DataPath::kChannel: return "Channel";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace ibox
