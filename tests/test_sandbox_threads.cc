// Multi-threaded programs inside identity boxes: clone(CLONE_VM|
// CLONE_FILES) children must share the boxed descriptor table and
// serialize through the supervisor without deadlock or data loss.
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include "box/box_context.h"
#include "box/process_registry.h"
#include "sandbox/supervisor.h"
#include "util/fs.h"
#include "util/path.h"

namespace ibox {
namespace {

std::string helper_path() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  buf[n > 0 ? n : 0] = '\0';
  return path_join(path_dirname(buf), "helper_threads");
}

// Both dispatch modes: thread creation (clone) traps either way, but under
// kSeccomp the futex/mmap traffic between the writers runs untraced, which
// exercises a very different interleaving of ptrace stops.
class SandboxThreads : public ::testing::TestWithParam<DispatchMode> {};

TEST_P(SandboxThreads, FourWritersShareTheBoxedTable) {
  TempDir work("threads-work");
  ASSERT_TRUE(write_file(work.sub(".__acl"), "Tester rwldax\n").ok());
  TempDir state("threads-state");
  BoxOptions options;
  options.state_dir = state.path();
  options.provision_home = false;
  auto box = BoxContext::Create(*Identity::Parse("Tester"), options);
  ASSERT_TRUE(box.ok());

  UniqueFd out_fd(::memfd_create("threads-out", 0));
  ProcessRegistry registry;
  SandboxConfig config;
  config.dispatch = GetParam();
  Supervisor supervisor(**box, registry, config);
  Supervisor::Stdio stdio{-1, out_fd.get(), -1};
  auto exit_code =
      supervisor.run({helper_path(), work.path()}, {}, stdio);
  ASSERT_TRUE(exit_code.ok()) << exit_code.error().message();
  char buf[256] = {0};
  ssize_t n = ::pread(out_fd.get(), buf, sizeof(buf) - 1, 0);
  ASSERT_GT(n, 0);
  EXPECT_EQ(*exit_code, 0) << buf;
  EXPECT_EQ(std::string(buf), "threads-ok 4 records 256\n");
  // The tracer saw every thread.
  EXPECT_GE(supervisor.stats().processes_seen, 5u);

  // The file contents are verifiable from outside the box too.
  auto contents = read_file(work.sub("threads.bin"));
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 4096u);
  EXPECT_EQ(contents->substr(0, 8), "t00r000-");
}

INSTANTIATE_TEST_SUITE_P(BothDispatchModes, SandboxThreads,
                         ::testing::Values(DispatchMode::kTraceAll,
                                           DispatchMode::kSeccomp),
                         [](const auto& info) {
                           return info.param == DispatchMode::kSeccomp
                                      ? std::string("Seccomp")
                                      : std::string("Trace");
                         });

}  // namespace
}  // namespace ibox
