#include "util/strings.h"

#include <gtest/gtest.h>

namespace ibox {
namespace {

using namespace std::literals;

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWs, DropsEmptyFields) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split_ws("   ").empty());
  EXPECT_TRUE(split_ws("").empty());
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Trim, Basic) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("globus:/O=X", "globus:"));
  EXPECT_FALSE(starts_with("glob", "globus:"));
  EXPECT_TRUE(ends_with("file.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", ".txt"));
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(ParseU64, Valid) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_u64("42"), 42u);
}

TEST(ParseU64, Invalid) {
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("18446744073709551616"));  // overflow
}

TEST(ParseI64, Valid) {
  EXPECT_EQ(parse_i64("-1"), -1);
  EXPECT_EQ(parse_i64("+7"), 7);
  EXPECT_EQ(parse_i64("-9223372036854775808"), INT64_MIN);
  EXPECT_EQ(parse_i64("9223372036854775807"), INT64_MAX);
}

TEST(ParseI64, Invalid) {
  EXPECT_FALSE(parse_i64("9223372036854775808"));
  EXPECT_FALSE(parse_i64("-9223372036854775809"));
  EXPECT_FALSE(parse_i64("-"));
}

TEST(Hex, RoundTrip) {
  EXPECT_EQ(hex_encode("\x00\xff\x10"sv), "00ff10");
  EXPECT_EQ(hex_decode("00ff10"), "\x00\xff\x10"sv);
  EXPECT_EQ(hex_decode("ABCD"), "\xab\xcd"sv);
}

TEST(Hex, Invalid) {
  EXPECT_FALSE(hex_decode("abc"));   // odd length
  EXPECT_FALSE(hex_decode("zz"));    // bad digit
}

TEST(GlobMatch, Literal) {
  EXPECT_TRUE(glob_match("abc", "abc"));
  EXPECT_FALSE(glob_match("abc", "abd"));
  EXPECT_FALSE(glob_match("abc", "ab"));
  EXPECT_FALSE(glob_match("ab", "abc"));
}

TEST(GlobMatch, Star) {
  EXPECT_TRUE(glob_match("*", ""));
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("/O=UnivNowhere/*", "/O=UnivNowhere/CN=Fred"));
  EXPECT_FALSE(glob_match("/O=UnivNowhere/*", "/O=Elsewhere/CN=Fred"));
  EXPECT_TRUE(glob_match("*.nowhere.edu", "laptop.cs.nowhere.edu"));
  EXPECT_FALSE(glob_match("*.nowhere.edu", "laptop.cs.nowhere.com"));
  EXPECT_TRUE(glob_match("a*b*c", "aXXbYYc"));
  EXPECT_TRUE(glob_match("a*b*c", "abc"));
  EXPECT_FALSE(glob_match("a*b*c", "acb"));
}

TEST(GlobMatch, Question) {
  EXPECT_TRUE(glob_match("a?c", "abc"));
  EXPECT_FALSE(glob_match("a?c", "ac"));
  EXPECT_TRUE(glob_match("??", "ab"));
}

TEST(GlobMatch, StarCrossesSlashes) {
  // Identity wildcards span path-like separators (DN components).
  EXPECT_TRUE(glob_match("globus:*", "globus:/O=X/CN=Y"));
}

TEST(ReplaceAll, Basic) {
  EXPECT_EQ(replace_all("a|b|c", "|", "%7c"), "a%7cb%7cc");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("xyz", "q", "r"), "xyz");
}

}  // namespace
}  // namespace ibox
