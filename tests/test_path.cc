#include "util/path.h"

#include <gtest/gtest.h>

namespace ibox {
namespace {

TEST(PathClean, Basics) {
  EXPECT_EQ(path_clean("/a/b/c"), "/a/b/c");
  EXPECT_EQ(path_clean("/a//b///c"), "/a/b/c");
  EXPECT_EQ(path_clean("/a/./b/."), "/a/b");
  EXPECT_EQ(path_clean("/"), "/");
  EXPECT_EQ(path_clean(""), ".");
  EXPECT_EQ(path_clean("."), ".");
  EXPECT_EQ(path_clean("a/b"), "a/b");
}

TEST(PathClean, DotDot) {
  EXPECT_EQ(path_clean("/a/b/../c"), "/a/c");
  EXPECT_EQ(path_clean("/a/../../b"), "/b");  // cannot escape root
  EXPECT_EQ(path_clean("/.."), "/");
  EXPECT_EQ(path_clean("a/../b"), "b");
  EXPECT_EQ(path_clean("../a"), "../a");     // relative may escape upward
  EXPECT_EQ(path_clean("a/../../b"), "../b");
  EXPECT_EQ(path_clean("a/.."), ".");
}

TEST(PathClean, TrailingSlash) {
  EXPECT_EQ(path_clean("/a/b/"), "/a/b");
  EXPECT_EQ(path_clean("a/"), "a");
}

TEST(PathJoin, Basics) {
  EXPECT_EQ(path_join("/a", "b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "b/c"), "/a/b/c");
  EXPECT_EQ(path_join("/a", "/b"), "/b");  // absolute rel replaces base
  EXPECT_EQ(path_join("/a", ""), "/a");
  EXPECT_EQ(path_join("", "b"), "b");
  EXPECT_EQ(path_join("/a", "../b"), "/b");
}

TEST(PathDirname, Basics) {
  EXPECT_EQ(path_dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(path_dirname("/a"), "/");
  EXPECT_EQ(path_dirname("/"), "/");
  EXPECT_EQ(path_dirname("a"), ".");
  EXPECT_EQ(path_dirname("a/b"), "a");
}

TEST(PathBasename, Basics) {
  EXPECT_EQ(path_basename("/a/b/c"), "c");
  EXPECT_EQ(path_basename("/"), "/");
  EXPECT_EQ(path_basename("a"), "a");
  EXPECT_EQ(path_basename("/a/b/"), "b");
}

TEST(PathComponents, Basics) {
  EXPECT_EQ(path_components("/a/b/c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(path_components("/").empty());
  EXPECT_EQ(path_components("a//b"), (std::vector<std::string>{"a", "b"}));
}

TEST(PathIsWithin, Basics) {
  EXPECT_TRUE(path_is_within("/a/b", "/a/b"));
  EXPECT_TRUE(path_is_within("/a/b", "/a/b/c"));
  EXPECT_FALSE(path_is_within("/a/b", "/a/bc"));  // prefix but not subpath
  EXPECT_FALSE(path_is_within("/a/b", "/a"));
  EXPECT_TRUE(path_is_within("/", "/anything"));
  EXPECT_TRUE(path_is_within("/", "/"));
  EXPECT_TRUE(path_is_within("/a/b", "/a/b/../b/c"));  // cleaned first
  EXPECT_FALSE(path_is_within("/a/b", "/a/b/../c"));   // escapes after clean
}

TEST(PathIsAbsolute, Basics) {
  EXPECT_TRUE(path_is_absolute("/a"));
  EXPECT_FALSE(path_is_absolute("a"));
  EXPECT_FALSE(path_is_absolute(""));
}

// Property sweep: cleaning is idempotent and never emits "//", "/./" or a
// trailing slash (except the root itself).
class PathCleanProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(PathCleanProperty, IdempotentAndCanonical) {
  std::string once = path_clean(GetParam());
  EXPECT_EQ(path_clean(once), once);
  EXPECT_EQ(once.find("//"), std::string::npos) << once;
  EXPECT_EQ(once.find("/./"), std::string::npos) << once;
  if (once != "/") {
    EXPECT_FALSE(!once.empty() && once.back() == '/') << once;
  }
  // Absolute inputs stay absolute.
  if (GetParam()[0] == '/') {
    EXPECT_EQ(once[0], '/');
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathCleanProperty,
    ::testing::Values("/", "//", "///x//y//", "/a/b/../../../..", "a/./b/..",
                      "./..", "../../..", "/x/./y/./z/..", "x//..//y",
                      "/work/./sim.exe", "a/b/c/d/../../../../e", ".."));

}  // namespace
}  // namespace ibox
