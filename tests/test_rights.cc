#include "acl/rights.h"

#include <gtest/gtest.h>

namespace ibox {
namespace {

Rights rp(const std::string& text) { return *Rights::Parse(text); }

TEST(Rights, ParseBasicSets) {
  Rights fred = rp("rwlax");
  EXPECT_TRUE(fred.can_read());
  EXPECT_TRUE(fred.can_write());
  EXPECT_TRUE(fred.can_list());
  EXPECT_TRUE(fred.can_admin());
  EXPECT_TRUE(fred.can_execute());
  EXPECT_FALSE(fred.can_reserve());

  Rights rl = rp("rl");
  EXPECT_TRUE(rl.can_read());
  EXPECT_TRUE(rl.can_list());
  EXPECT_FALSE(rl.can_write());
}

TEST(Rights, ParseReserve) {
  // "v(rwlax)" from the paper's root ACL example.
  Rights v = rp("v(rwlax)");
  EXPECT_TRUE(v.can_reserve());
  EXPECT_FALSE(v.can_read());
  Rights grant = v.reserve_grant();
  EXPECT_TRUE(grant.can_read());
  EXPECT_TRUE(grant.can_write());
  EXPECT_TRUE(grant.can_admin());
  EXPECT_FALSE(grant.can_reserve());
}

TEST(Rights, ParseMixedPlainAndReserve) {
  Rights mixed = rp("rlv(rwla)");
  EXPECT_TRUE(mixed.can_read());
  EXPECT_TRUE(mixed.can_list());
  EXPECT_TRUE(mixed.can_reserve());
  EXPECT_FALSE(mixed.can_write());
  EXPECT_TRUE(mixed.reserve_grant().can_admin());
}

TEST(Rights, RecursiveReserve) {
  // v inside the parenthesized set: children may reserve grandchildren
  // with the same grant.
  Rights v = rp("v(rwlaxv)");
  Rights grant = v.reserve_grant();
  EXPECT_TRUE(grant.can_reserve());
  Rights grandchild = grant.reserve_grant();
  EXPECT_TRUE(grandchild.can_write());
  EXPECT_TRUE(grandchild.can_reserve());  // carries forward indefinitely
}

TEST(Rights, ParseRejectsGarbage) {
  EXPECT_FALSE(Rights::Parse(""));
  EXPECT_FALSE(Rights::Parse("rz"));
  EXPECT_FALSE(Rights::Parse("v(r"));     // unterminated
  EXPECT_FALSE(Rights::Parse("v(q)"));    // bad letter inside
  EXPECT_FALSE(Rights::Parse("RW"));      // case-sensitive
}

TEST(Rights, EmptyIsDash) {
  Rights none = rp("-");
  EXPECT_TRUE(none.empty());
  EXPECT_EQ(none.str(), "-");
}

TEST(Rights, FormatRoundTrip) {
  for (const char* text :
       {"r", "rw", "rwl", "rwlax", "rwldax", "rl", "x", "v", "v(rwlax)",
        "rlv(rwla)", "wv(r)", "v(rwlaxv)", "-"}) {
    Rights parsed = rp(text);
    Rights again = rp(parsed.str());
    EXPECT_EQ(parsed, again) << text << " -> " << parsed.str();
  }
}

TEST(Rights, WriteImpliesDelete) {
  EXPECT_TRUE(rp("w").can_delete());
  EXPECT_TRUE(rp("d").can_delete());
  EXPECT_FALSE(rp("r").can_delete());
  // covers() honors the implication.
  EXPECT_TRUE(rp("w").covers(rp("d")));
  EXPECT_FALSE(rp("r").covers(rp("d")));
}

TEST(Rights, UnionMergesBothParts) {
  Rights merged = rp("rl") | rp("wv(ra)");
  EXPECT_TRUE(merged.can_read());
  EXPECT_TRUE(merged.can_write());
  EXPECT_TRUE(merged.can_reserve());
  EXPECT_TRUE(merged.reserve_grant().can_admin());
}

TEST(Rights, CoversIsReflexiveAndMonotone) {
  for (const char* text : {"r", "rwlax", "v(rw)", "rlv(rwla)", "-"}) {
    Rights set = rp(text);
    EXPECT_TRUE(set.covers(set)) << text;
    EXPECT_TRUE(set.covers(Rights())) << text;
    EXPECT_TRUE(Rights::Full().covers(Rights(set.bits() & kAllPlainRights)))
        << text;
  }
  EXPECT_FALSE(rp("rl").covers(rp("rwl")));
}

// Property sweep over all 2^7 bit patterns: union is commutative,
// associative, idempotent; covers agrees with bit subset (mod w=>d).
class RightsAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(RightsAlgebra, UnionLaws) {
  Rights a(static_cast<uint8_t>(GetParam() & 0x7f),
           static_cast<uint8_t>((GetParam() * 37) & 0x7f));
  Rights b(static_cast<uint8_t>((GetParam() * 13) & 0x7f),
           static_cast<uint8_t>((GetParam() * 91) & 0x7f));
  EXPECT_EQ(a | b, b | a);
  EXPECT_EQ(a | a, a);
  EXPECT_EQ((a | b) | a, a | b);
  EXPECT_TRUE((a | b).covers(Rights(a.bits())));
  EXPECT_TRUE((a | b).covers(Rights(b.bits())));
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, RightsAlgebra, ::testing::Range(0, 128));

}  // namespace
}  // namespace ibox
