#include "auth/auth.h"

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "auth/sim_gsi.h"
#include "auth/sim_kerberos.h"
#include "auth/simple.h"
#include "util/fs.h"

namespace ibox {
namespace {

constexpr int64_t kNow = 1800000000;
int64_t fixed_clock() { return kNow; }

// Runs client and server halves concurrently over an in-memory channel.
struct HandshakeResult {
  Status client = Status::Ok();
  Result<Identity> server = Error(EIO);
};

HandshakeResult run_handshake(
    const std::vector<const ClientCredential*>& creds,
    const std::vector<const ServerVerifier*>& verifiers) {
  auto pair = make_channel_pair();
  HandshakeResult result;
  std::thread client_thread([&] {
    result.client = authenticate_client(*pair.a, creds);
  });
  result.server = authenticate_server(*pair.b, verifiers);
  client_thread.join();
  return result;
}

// ---------------------------------------------------------------- SimGSI --

class GsiTest : public ::testing::Test {
 protected:
  GsiTest()
      : ca_("UnivNowhereCA", "ca-secret-0001"),
        fred_(ca_.issue("/O=UnivNowhere/CN=Fred", 3600, kNow)) {
    trust_.trust(ca_.name(), ca_.verification_secret());
  }
  CertificateAuthority ca_;
  GsiUserCredentialData fred_;
  GsiTrustStore trust_;
};

TEST_F(GsiTest, CertificateSerializationRoundTrip) {
  auto back = GsiCertificate::Deserialize(fred_.certificate.serialize());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->subject, fred_.certificate.subject);
  EXPECT_EQ(back->issuer, fred_.certificate.issuer);
  EXPECT_EQ(back->expires_at, fred_.certificate.expires_at);
  EXPECT_EQ(back->signature, fred_.certificate.signature);
}

TEST_F(GsiTest, SerializationEscapesDelimiters) {
  auto odd = ca_.issue("/O=We|rd%Org/CN=X", 3600, kNow);
  auto back = GsiCertificate::Deserialize(odd.certificate.serialize());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->subject, "/O=We|rd%Org/CN=X");
}

TEST_F(GsiTest, TrustStoreValidates) {
  auto subject = trust_.validate(fred_.certificate, kNow);
  ASSERT_TRUE(subject.ok());
  EXPECT_EQ(*subject, "/O=UnivNowhere/CN=Fred");
}

TEST_F(GsiTest, UntrustedIssuerRejected) {
  CertificateAuthority rogue("RogueCA", "rogue-secret");
  auto eve = rogue.issue("/O=UnivNowhere/CN=Fred", 3600, kNow);
  EXPECT_EQ(trust_.validate(eve.certificate, kNow).error_code(),
            EKEYREJECTED);
}

TEST_F(GsiTest, TamperedCertificateRejected) {
  GsiCertificate forged = fred_.certificate;
  forged.subject = "/O=UnivNowhere/CN=Mallory";  // signature now stale
  EXPECT_EQ(trust_.validate(forged, kNow).error_code(), EKEYREJECTED);
}

TEST_F(GsiTest, ExpiredCertificateRejected) {
  EXPECT_EQ(trust_.validate(fred_.certificate, kNow + 7200).error_code(),
            EKEYEXPIRED);
}

TEST_F(GsiTest, FullHandshakeYieldsPrincipal) {
  GsiCredential cred(fred_);
  GsiVerifier verifier(trust_, &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  ASSERT_TRUE(result.client.ok()) << result.client.message();
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->str(), "globus:/O=UnivNowhere/CN=Fred");
}

TEST_F(GsiTest, WrongKeyFailsChallenge) {
  GsiUserCredentialData stolen = fred_;
  stolen.private_key = "0000000000000000";  // certificate without the key
  GsiCredential cred(stolen);
  GsiVerifier verifier(trust_, &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_FALSE(result.client.ok());
  EXPECT_EQ(result.server.error_code(), EACCES);
}

// ------------------------------------------------------------- Kerberos --

class KerberosTest : public ::testing::Test {
 protected:
  KerberosTest() : kdc_("NOWHERE.EDU", "service-secret-7") {
    kdc_.add_user("fred", "fredpw");
  }
  Kdc kdc_;
};

TEST_F(KerberosTest, KdcChecksPassword) {
  EXPECT_TRUE(kdc_.issue("fred", "fredpw", 3600, kNow).ok());
  EXPECT_EQ(kdc_.issue("fred", "wrong", 3600, kNow).error_code(), EACCES);
  EXPECT_EQ(kdc_.issue("ghost", "x", 3600, kNow).error_code(), EACCES);
}

TEST_F(KerberosTest, TicketRoundTrip) {
  auto ticket = kdc_.issue("fred", "fredpw", 3600, kNow);
  ASSERT_TRUE(ticket.ok());
  auto back = KerberosTicket::Deserialize(ticket->ticket.serialize());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->client, "fred");
  EXPECT_EQ(back->realm, "NOWHERE.EDU");
}

TEST_F(KerberosTest, FullHandshakeYieldsPrincipal) {
  auto ticket = kdc_.issue("fred", "fredpw", 3600, kNow);
  ASSERT_TRUE(ticket.ok());
  KerberosCredential cred(*ticket);
  KerberosVerifier verifier("NOWHERE.EDU", kdc_.service_secret(),
                            &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  ASSERT_TRUE(result.client.ok());
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->str(), "kerberos:fred@NOWHERE.EDU");
}

TEST_F(KerberosTest, ExpiredTicketRejected) {
  auto ticket = kdc_.issue("fred", "fredpw", 1, kNow - 100);
  ASSERT_TRUE(ticket.ok());
  KerberosCredential cred(*ticket);
  KerberosVerifier verifier("NOWHERE.EDU", kdc_.service_secret(),
                            &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_EQ(result.server.error_code(), EKEYEXPIRED);
}

TEST_F(KerberosTest, WrongRealmRejected) {
  auto ticket = kdc_.issue("fred", "fredpw", 3600, kNow);
  ASSERT_TRUE(ticket.ok());
  KerberosCredential cred(*ticket);
  KerberosVerifier verifier("ELSEWHERE.ORG", kdc_.service_secret(),
                            &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_EQ(result.server.error_code(), EKEYREJECTED);
}

TEST_F(KerberosTest, ForgedTicketRejected) {
  auto ticket = kdc_.issue("fred", "fredpw", 3600, kNow);
  ASSERT_TRUE(ticket.ok());
  ticket->ticket.client = "root";  // MAC no longer covers the fields
  KerberosCredential cred(*ticket);
  KerberosVerifier verifier("NOWHERE.EDU", kdc_.service_secret(),
                            &fixed_clock);
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_EQ(result.server.error_code(), EKEYREJECTED);
}

// ------------------------------------------------------------- Hostname --

TEST(HostnameAuth, ResolvesPeerAddress) {
  HostResolver resolver = [](const std::string& addr)
      -> std::optional<std::string> {
    if (addr == "10.0.0.7") return "laptop.cs.nowhere.edu";
    return std::nullopt;
  };
  HostnameCredential cred;
  HostnameVerifier verifier("10.0.0.7", resolver);
  auto result = run_handshake({&cred}, {&verifier});
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->str(), "hostname:laptop.cs.nowhere.edu");
}

TEST(HostnameAuth, UnresolvableFails) {
  HostResolver resolver = [](const std::string&)
      -> std::optional<std::string> { return std::nullopt; };
  HostnameCredential cred;
  HostnameVerifier verifier("203.0.113.9", resolver);
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_EQ(result.server.error_code(), EHOSTUNREACH);
}

// ----------------------------------------------------------------- Unix --

TEST(UnixAuth, ChallengeFileProvesAccount) {
  TempDir tmp("unixauth");
  UnixCredential cred(current_unix_username());
  UnixVerifier verifier(tmp.path());
  auto result = run_handshake({&cred}, {&verifier});
  ASSERT_TRUE(result.client.ok()) << result.client.message();
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->str(), "unix:" + current_unix_username());
}

TEST(UnixAuth, WrongClaimRejected) {
  TempDir tmp("unixauth");
  UnixCredential cred("not-this-user");
  UnixVerifier verifier(tmp.path());
  auto result = run_handshake({&cred}, {&verifier});
  EXPECT_EQ(result.server.error_code(), EACCES);
}

// ------------------------------------------------------------ Negotiate --

TEST(Negotiation, ServerHonorsClientPreferenceOrder) {
  TempDir tmp("negotiate");
  CertificateAuthority ca("CA", "s");
  GsiTrustStore trust;
  trust.trust("CA", "s");
  auto fred = ca.issue("/CN=Fred", 3600, kNow);
  GsiCredential gsi_cred(fred);
  UnixCredential unix_cred(current_unix_username());
  GsiVerifier gsi_verifier(trust, &fixed_clock);
  UnixVerifier unix_verifier(tmp.path());

  // Client prefers unix; server supports both; unix wins.
  auto result = run_handshake({&unix_cred, &gsi_cred},
                              {&gsi_verifier, &unix_verifier});
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->method(), AuthMethod::kUnix);

  // Client prefers gsi: gsi wins.
  auto result2 = run_handshake({&gsi_cred, &unix_cred},
                               {&gsi_verifier, &unix_verifier});
  ASSERT_TRUE(result2.server.ok());
  EXPECT_EQ(result2.server->str(), "globus:/CN=Fred");
}

TEST(Negotiation, NoCommonMethodFails) {
  CertificateAuthority ca("CA", "s");
  auto fred = ca.issue("/CN=Fred", 3600, kNow);
  GsiCredential gsi_cred(fred);
  TempDir tmp("negotiate");
  UnixVerifier unix_verifier(tmp.path());
  auto result = run_handshake({&gsi_cred}, {&unix_verifier});
  EXPECT_EQ(result.server.error_code(), EPROTO);
  EXPECT_FALSE(result.client.ok());
}

TEST(Negotiation, FallsPastUnverifiableMethod) {
  // Client offers kerberos then unix; server only verifies unix.
  TempDir tmp("negotiate");
  Kdc kdc("R", "s");
  kdc.add_user("u", "p");
  auto ticket = kdc.issue("u", "p", 3600, kNow);
  ASSERT_TRUE(ticket.ok());
  KerberosCredential krb_cred(*ticket);
  UnixCredential unix_cred(current_unix_username());
  UnixVerifier unix_verifier(tmp.path());
  auto result =
      run_handshake({&krb_cred, &unix_cred}, {&unix_verifier});
  ASSERT_TRUE(result.server.ok());
  EXPECT_EQ(result.server->method(), AuthMethod::kUnix);
}

// ------------------------------------------------- protocol extensions --

// Like run_handshake, but with each side's extension lists and capture of
// what the client believes was negotiated.
HandshakeResult run_handshake_ext(
    const std::vector<const ClientCredential*>& creds,
    const std::vector<const ServerVerifier*>& verifiers,
    const std::vector<std::string>& offered,
    const std::vector<std::string>& supported,
    std::vector<std::string>* negotiated) {
  auto pair = make_channel_pair();
  HandshakeResult result;
  std::thread client_thread([&] {
    result.client = authenticate_client(*pair.a, creds, offered, negotiated);
  });
  result.server =
      authenticate_server(*pair.b, verifiers, supported, nullptr);
  client_thread.join();
  return result;
}

TEST(Extensions, NegotiatedWhenBothSidesSupport) {
  TempDir tmp("ext");
  UnixCredential cred(current_unix_username());
  UnixVerifier verifier(tmp.path());
  std::vector<std::string> negotiated;
  auto result = run_handshake_ext({&cred}, {&verifier}, {"+trace"},
                                  {"+trace"}, &negotiated);
  ASSERT_TRUE(result.client.ok());
  ASSERT_TRUE(result.server.ok());
  ASSERT_EQ(negotiated.size(), 1u);
  EXPECT_EQ(negotiated[0], "+trace");
}

TEST(Extensions, OldServerSilentlyIgnoresOffer) {
  // A server that predates extensions (the 2-arg entry point) skips the
  // unknown "+trace" token; the client ends up with nothing negotiated
  // and the handshake still succeeds.
  TempDir tmp("ext");
  UnixCredential cred(current_unix_username());
  UnixVerifier verifier(tmp.path());
  std::vector<std::string> negotiated;
  auto result =
      run_handshake_ext({&cred}, {&verifier}, {"+trace"}, {}, &negotiated);
  ASSERT_TRUE(result.client.ok());
  ASSERT_TRUE(result.server.ok());
  EXPECT_TRUE(negotiated.empty());
}

TEST(Extensions, NewServerOffersNothingToOldClient) {
  // An extension-aware server never volunteers tokens the client did not
  // offer, so an old client's strict "use <method>" parse stays valid.
  TempDir tmp("ext");
  UnixCredential cred(current_unix_username());
  UnixVerifier verifier(tmp.path());
  std::vector<std::string> negotiated;
  auto result =
      run_handshake_ext({&cred}, {&verifier}, {}, {"+trace"}, &negotiated);
  ASSERT_TRUE(result.client.ok());
  ASSERT_TRUE(result.server.ok());
  EXPECT_TRUE(negotiated.empty());
}

TEST(Extensions, UnsupportedExtensionIsDropped) {
  TempDir tmp("ext");
  UnixCredential cred(current_unix_username());
  UnixVerifier verifier(tmp.path());
  std::vector<std::string> negotiated;
  auto result = run_handshake_ext({&cred}, {&verifier},
                                  {"+trace", "+compress"}, {"+trace"},
                                  &negotiated);
  ASSERT_TRUE(result.client.ok());
  ASSERT_TRUE(result.server.ok());
  ASSERT_EQ(negotiated.size(), 1u);
  EXPECT_EQ(negotiated[0], "+trace");
}

}  // namespace
}  // namespace ibox
