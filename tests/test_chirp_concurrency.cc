// Reactor-mode concurrency: pipelined requests on one connection keep
// their order, many clients make progress in parallel, an oversized frame
// is a per-request error rather than a torn connection, and the server's
// queue/worker/cache counters surface what happened.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <thread>

#include "auth/sim_gsi.h"
#include "chirp/client.h"
#include "chirp/server.h"
#include "util/fs.h"

namespace ibox {
namespace {

constexpr int64_t kNow = 1800000000;
int64_t fixed_clock() { return kNow; }

class ChirpConcurrencyTest : public ::testing::Test {
 protected:
  ChirpConcurrencyTest()
      : export_("chirpconc-export"),
        state_("chirpconc-state"),
        ca_("UnivNowhereCA", "ca-secret") {
    trust_.trust(ca_.name(), ca_.verification_secret());
    fred_cred_ = ca_.issue("/O=UnivNowhere/CN=Fred", 3600, kNow);
  }

  ChirpServerOptions base_options() {
    ChirpServerOptions options;
    options.export_root = export_.path();
    options.state_dir = state_.path();
    options.auth_methods.push_back(AuthMethodConfig::Gsi(trust_));
    options.clock = &fixed_clock;
    options.root_acl_text = "globus:/O=UnivNowhere/* rwlax\n";
    return options;
  }

  std::unique_ptr<ChirpClient> connect(ChirpServer& server) {
    GsiCredential cred(fred_cred_);
    ChirpClientOptions options;
    options.port = server.port();
    options.credentials = {&cred};
    auto client = ChirpClient::Connect(options);
    EXPECT_TRUE(client.ok());
    return client.ok() ? std::move(*client) : nullptr;
  }

  // Authenticated raw frame channel, for pipelining and malformed input
  // (ChirpClient is strictly one RPC in flight).
  Result<FrameChannel> connect_raw(ChirpServer& server) {
    auto channel = tcp_connect("localhost", server.port());
    if (!channel.ok()) return channel.error();
    GsiCredential cred(fred_cred_);
    FrameAuthChannel auth(*channel);
    IBOX_RETURN_IF_ERROR(authenticate_client(auth, {&cred}));
    return channel;
  }

  TempDir export_;
  TempDir state_;
  CertificateAuthority ca_;
  GsiTrustStore trust_;
  GsiUserCredentialData fred_cred_;
};

TEST_F(ChirpConcurrencyTest, PipelinedRequestsAnswerInOrder) {
  auto server = ChirpServer::Start(base_options());
  ASSERT_TRUE(server.ok());
  auto client = connect(**server);
  ASSERT_TRUE(client);
  for (int i = 0; i < 10; ++i) {
    const std::string path = "/f" + std::to_string(i);
    ASSERT_TRUE(
        client->put_file(path, "contents-" + std::to_string(i)).ok());
  }

  auto raw = connect_raw(**server);
  ASSERT_TRUE(raw.ok());

  // Fire the whole mixed batch before reading a single reply: gets of the
  // ten files interleaved with misses. Replies must come back 1:1, in
  // request order.
  for (int i = 0; i < 10; ++i) {
    BufWriter get;
    get.put_u8(static_cast<uint8_t>(ChirpOp::kGetFile));
    get.put_bytes("/f" + std::to_string(i));
    ASSERT_TRUE(raw->send_frame(get.data()).ok());
    BufWriter miss;
    miss.put_u8(static_cast<uint8_t>(ChirpOp::kStat));
    miss.put_bytes("/missing-" + std::to_string(i));
    ASSERT_TRUE(raw->send_frame(miss.data()).ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto reply = raw->recv_frame();
    ASSERT_TRUE(reply.ok());
    BufReader reader(*reply);
    const std::string expect = "contents-" + std::to_string(i);
    ASSERT_EQ(reader.get_i64().value(),
              static_cast<int64_t>(expect.size()));
    EXPECT_EQ(reader.get_bytes().value(), expect);

    auto miss_reply = raw->recv_frame();
    ASSERT_TRUE(miss_reply.ok());
    BufReader miss_reader(*miss_reply);
    EXPECT_EQ(miss_reader.get_i64().value(), -ENOENT);
  }

  auto snap = (*server)->snapshot_stats();
  EXPECT_GE(snap.peak_queue_depth, 1u);
  EXPECT_GE(snap.worker_batches, 1u);
}

TEST_F(ChirpConcurrencyTest, ThirtyTwoClientsMixedOps) {
  auto options = base_options();
  options.worker_threads = 4;
  auto server = ChirpServer::Start(std::move(options));
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 32;
  constexpr int kRounds = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = connect(**server);
      if (!client) {
        failures++;
        return;
      }
      const std::string dir = "/client-" + std::to_string(c);
      if (!client->mkdir(dir).ok()) failures++;
      for (int round = 0; round < kRounds; ++round) {
        const std::string file =
            dir + "/file-" + std::to_string(round);
        const std::string body =
            "payload-" + std::to_string(c) + "-" + std::to_string(round);
        if (!client->put_file(file, body).ok()) failures++;
        auto read_back = client->get_file(file);
        if (!read_back.ok() || *read_back != body) failures++;
        if (!client->stat(file).ok()) failures++;
        auto listing = client->readdir(dir);
        if (!listing.ok() || listing->size() < 1) failures++;
        if (!client->whoami().ok()) failures++;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  auto snap = (*server)->snapshot_stats();
  EXPECT_EQ(snap.connections, static_cast<uint64_t>(kClients));
  // mkdir + rounds * (put, get, stat, readdir, whoami)
  EXPECT_GE(snap.requests, static_cast<uint64_t>(kClients * (1 + kRounds * 5)));
  // Every operation consults ACLs along the path; with 32 clients hammering
  // a handful of directories the parsed-ACL cache must be doing the work.
  EXPECT_GT(snap.acl_cache_hits, snap.acl_cache_misses);
}

TEST_F(ChirpConcurrencyTest, OversizedFrameIsAPerRequestError) {
  auto server = ChirpServer::Start(base_options());
  ASSERT_TRUE(server.ok());
  auto raw = connect_raw(**server);
  ASSERT_TRUE(raw.ok());

  // Hand-craft a frame announcing kMaxFrame+1 bytes (send_frame refuses to
  // build one) and stream the whole payload.
  const uint32_t huge = static_cast<uint32_t>(FrameChannel::kMaxFrame) + 1;
  std::string blob(1u << 20, 'x');
  std::string header(reinterpret_cast<const char*>(&huge), 4);
  auto send_raw = [&](const char* data, size_t size) {
    size_t done = 0;
    while (done < size) {
      ssize_t n =
          ::send(raw->fd(), data + done, size - done, MSG_NOSIGNAL);
      if (n <= 0 && errno != EINTR) return false;
      if (n > 0) done += static_cast<size_t>(n);
    }
    return true;
  };
  ASSERT_TRUE(send_raw(header.data(), header.size()));
  uint64_t remaining = huge;
  while (remaining > 0) {
    const size_t chunk = std::min<uint64_t>(remaining, blob.size());
    ASSERT_TRUE(send_raw(blob.data(), chunk));
    remaining -= chunk;
  }

  // The server skips the payload, answers EMSGSIZE, and keeps serving the
  // same connection.
  auto reply = raw->recv_frame();
  ASSERT_TRUE(reply.ok());
  BufReader reader(*reply);
  EXPECT_EQ(reader.get_i64().value(), -EMSGSIZE);

  BufWriter whoami;
  whoami.put_u8(static_cast<uint8_t>(ChirpOp::kWhoami));
  ASSERT_TRUE(raw->send_frame(whoami.data()).ok());
  auto alive = raw->recv_frame();
  ASSERT_TRUE(alive.ok());
  BufReader alive_reader(*alive);
  EXPECT_EQ(alive_reader.get_i64().value(), 0);
  EXPECT_EQ(alive_reader.get_bytes().value(),
            "globus:/O=UnivNowhere/CN=Fred");

  EXPECT_GE((*server)->snapshot_stats().oversized_frames, 1u);
}

TEST_F(ChirpConcurrencyTest, LegacyModeStillServes) {
  auto options = base_options();
  options.serve_mode = ChirpServerOptions::ServeMode::kThreadPerConnection;
  auto server = ChirpServer::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  auto client = connect(**server);
  ASSERT_TRUE(client);
  ASSERT_TRUE(client->put_file("/legacy.txt", "old path").ok());
  EXPECT_EQ(client->get_file("/legacy.txt").value(), "old path");
  EXPECT_EQ(client->whoami().value(), "globus:/O=UnivNowhere/CN=Fred");
}

TEST_F(ChirpConcurrencyTest, CacheOffServesCorrectlyWithZeroHits) {
  auto options = base_options();
  options.acl_cache_capacity = 0;
  auto server = ChirpServer::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  auto client = connect(**server);
  ASSERT_TRUE(client);
  ASSERT_TRUE(client->put_file("/nc.txt", "uncached").ok());
  EXPECT_EQ(client->get_file("/nc.txt").value(), "uncached");
  auto snap = (*server)->snapshot_stats();
  EXPECT_EQ(snap.acl_cache_hits, 0u);
}

TEST_F(ChirpConcurrencyTest, ExpiredDeadlineRefusesRequests) {
  auto options = base_options();
  // A 0ms-deadline cannot be configured (0 disables); instead exercise the
  // driver path directly: a context whose deadline already passed is
  // refused with ETIMEDOUT before any work happens.
  auto server = ChirpServer::Start(std::move(options));
  ASSERT_TRUE(server.ok());
  LocalDriver driver(export_.path());
  Identity fred = *Identity::Parse("globus:/O=UnivNowhere/CN=Fred");
  DriverStatsSink sink;
  RequestContext expired(
      fred, RequestContext::Clock::now() - std::chrono::seconds(1), &sink);
  EXPECT_EQ(driver.stat(expired, "/").error_code(), ETIMEDOUT);
  EXPECT_EQ(sink.timeouts.load(), 1u);
  EXPECT_EQ(sink.ops.load(), 0u);
}

}  // namespace
}  // namespace ibox
