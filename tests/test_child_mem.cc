// ChildMem: all three Figure 4(b) memory mechanisms against a real stopped
// child, plus the IoChannel allocator.
#include "sandbox/child_mem.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/ptrace.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

#include "sandbox/io_channel.h"

namespace ibox {
namespace {

// Spawns a stopped child exposing a known buffer; returns (pid, addr).
class StoppedChild {
 public:
  StoppedChild() {
    std::memset(shared_, 0, sizeof(shared_));
    std::snprintf(shared_, sizeof(shared_), "hello child memory");
    pid_ = ::fork();
    if (pid_ == 0) {
      ::ptrace(PTRACE_TRACEME, 0, nullptr, nullptr);
      ::raise(SIGSTOP);
      ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
  ~StoppedChild() {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
  int pid() const { return pid_; }
  uint64_t addr() const { return reinterpret_cast<uint64_t>(shared_); }

 private:
  int pid_ = -1;
  // The child is a fork: this buffer exists at the same address there.
  char shared_[256];
};

class ChildMemTest : public ::testing::TestWithParam<MemMechanism> {};

TEST_P(ChildMemTest, ReadKnownBuffer) {
  StoppedChild child;
  ChildMem mem(child.pid(), GetParam());
  char buf[32] = {0};
  ASSERT_TRUE(mem.read(child.addr(), buf, 18).ok());
  EXPECT_EQ(std::string(buf, 18), "hello child memory");
}

TEST_P(ChildMemTest, WriteThenReadBack) {
  StoppedChild child;
  ChildMem mem(child.pid(), GetParam());
  const char payload[] = "REWRITTEN-BY-SUPERVISOR";
  ASSERT_TRUE(mem.write(child.addr(), payload, sizeof(payload)).ok());
  char buf[64] = {0};
  ASSERT_TRUE(mem.read(child.addr(), buf, sizeof(payload)).ok());
  EXPECT_STREQ(buf, payload);
}

TEST_P(ChildMemTest, UnalignedOffsetsAndSizes) {
  StoppedChild child;
  ChildMem mem(child.pid(), GetParam());
  // Write 5 bytes at an odd offset; surrounding bytes must be preserved.
  ASSERT_TRUE(mem.write(child.addr() + 3, "XYZZY", 5).ok());
  char buf[32] = {0};
  ASSERT_TRUE(mem.read(child.addr(), buf, 18).ok());
  EXPECT_EQ(std::string(buf, 18), "helXYZZYild memory");
}

TEST_P(ChildMemTest, ReadString) {
  StoppedChild child;
  ChildMem mem(child.pid(), GetParam());
  auto text = mem.read_string(child.addr());
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello child memory");
  auto bounded = mem.read_string(child.addr(), 5);
  EXPECT_EQ(bounded.error_code(), ENAMETOOLONG);
}

TEST_P(ChildMemTest, BadAddressFails) {
  StoppedChild child;
  ChildMem mem(child.pid(), GetParam());
  char buf[8];
  EXPECT_FALSE(mem.read(0x10, buf, 8).ok());  // page zero is unmapped
}

INSTANTIATE_TEST_SUITE_P(AllMechanisms, ChildMemTest,
                         ::testing::Values(MemMechanism::kPeekPoke,
                                           MemMechanism::kProcMem,
                                           MemMechanism::kProcessVm),
                         [](const auto& info) {
                           switch (info.param) {
                             case MemMechanism::kPeekPoke: return "PeekPoke";
                             case MemMechanism::kProcMem: return "ProcMem";
                             case MemMechanism::kProcessVm: return "ProcessVm";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------------------ IoChannel --

TEST(IoChannel, AllocateWriteReadFree) {
  auto channel = IoChannel::Create(4096);
  ASSERT_TRUE(channel.ok());
  auto region = channel->allocate(100);
  ASSERT_TRUE(region.ok());
  ASSERT_TRUE(channel->write_at(*region, "channel data", 12).ok());
  char buf[16] = {0};
  ASSERT_TRUE(channel->read_at(*region, buf, 12).ok());
  EXPECT_EQ(std::string(buf, 12), "channel data");
  EXPECT_EQ(channel->bytes_in_use(), 4096u);  // page rounded
  channel->free_region(*region);
  EXPECT_EQ(channel->bytes_in_use(), 0u);
}

TEST(IoChannel, RegionsDoNotOverlapAndHolesReused) {
  auto channel = IoChannel::Create(4096);
  ASSERT_TRUE(channel.ok());
  auto a = channel->allocate(4096);
  auto b = channel->allocate(8192);
  auto c = channel->allocate(4096);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(*a, *b);
  EXPECT_GE(*c, *b + 8192);
  channel->free_region(*b);
  auto d = channel->allocate(4096);  // fits in b's hole
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, *b);
}

TEST(IoChannel, GrowsOnDemand) {
  auto channel = IoChannel::Create(4096);
  ASSERT_TRUE(channel.ok());
  auto big = channel->allocate(1 << 20);
  ASSERT_TRUE(big.ok());
  EXPECT_GE(channel->capacity(), 1u << 20);
  std::string data(1 << 20, 'z');
  EXPECT_TRUE(channel->write_at(*big, data.data(), data.size()).ok());
}

TEST(IoChannel, RefcountedSharing) {
  auto channel = IoChannel::Create(4096);
  ASSERT_TRUE(channel.ok());
  auto region = channel->allocate(4096);
  ASSERT_TRUE(region.ok());
  channel->ref_region(*region);   // fork-style second owner
  channel->free_region(*region);  // first owner drops
  EXPECT_EQ(channel->bytes_in_use(), 4096u);  // still held
  channel->free_region(*region);  // second owner drops
  EXPECT_EQ(channel->bytes_in_use(), 0u);
  // Double free after zero refs is a no-op.
  channel->free_region(*region);
}

}  // namespace
}  // namespace ibox
