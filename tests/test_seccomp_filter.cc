// The seccomp classifier: simulated instruction-by-instruction against the
// intercept table, spot-checked on the calls that must (and must not) trap,
// and driven end-to-end — a forced install failure must fall back to
// trace-all, and a real seccomp run must stop strictly less often than the
// same workload under trace-all.
#include "sandbox/seccomp_filter.h"

#include <gtest/gtest.h>
#include <linux/audit.h>
#include <linux/seccomp.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>

#include "box/box_context.h"
#include "box/process_registry.h"
#include "sandbox/supervisor.h"
#include "util/fs.h"
#include "util/path.h"

#ifndef SECCOMP_RET_KILL_PROCESS
#define SECCOMP_RET_KILL_PROCESS 0x80000000U
#endif

namespace ibox {
namespace {

const uint64_t kZeroArgs[6] = {0, 0, 0, 0, 0, 0};

uint32_t classify(const std::vector<sock_filter>& prog, uint64_t nr,
                  const uint64_t args[6] = kZeroArgs) {
  return simulate_seccomp_filter(prog, AUDIT_ARCH_X86_64, nr, args);
}

TEST(SeccompFilter, SimulationMatchesInterceptTableForEveryNumber) {
  auto prog = build_seccomp_filter();
  ASSERT_FALSE(prog.empty());
  // With all-zero args even mmap traps (no MAP_ANONYMOUS), so over the whole
  // number space the program must agree with the table bit-for-bit.
  for (uint64_t nr = 0; nr < 512; ++nr) {
    const uint32_t action = classify(prog, nr);
    if (seccomp_filter_intercepts(static_cast<long>(nr))) {
      EXPECT_EQ(action, SECCOMP_RET_TRACE) << "syscall " << nr;
    } else {
      EXPECT_EQ(action, SECCOMP_RET_ALLOW) << "syscall " << nr;
    }
  }
}

TEST(SeccompFilter, InterceptedCallsMustTrap) {
  auto prog = build_seccomp_filter();
  // Path-naming, fd-family, and process-control calls the supervisor
  // handles. dup2 is the canonical reason fd-family calls can't be
  // range-tested: a boxed descriptor can land on any number.
  for (long nr : {SYS_open, SYS_openat, SYS_stat, SYS_read, SYS_write,
                  SYS_close, SYS_dup2, SYS_execve, SYS_clone, SYS_fork,
                  SYS_chdir, SYS_rename, SYS_unlink, SYS_socket, SYS_kill}) {
    EXPECT_TRUE(seccomp_filter_intercepts(nr)) << "syscall " << nr;
    EXPECT_EQ(classify(prog, static_cast<uint64_t>(nr)), SECCOMP_RET_TRACE)
        << "syscall " << nr;
  }
}

TEST(SeccompFilter, PassThroughCallsMustRunNative) {
  auto prog = build_seccomp_filter();
  for (long nr : {SYS_futex, SYS_brk, SYS_clock_gettime, SYS_getpid,
                  SYS_gettid, SYS_exit_group, SYS_rt_sigaction,
                  SYS_rt_sigprocmask, SYS_nanosleep, SYS_sched_yield,
                  SYS_getrandom, SYS_mprotect}) {
    EXPECT_FALSE(seccomp_filter_intercepts(nr)) << "syscall " << nr;
    EXPECT_EQ(classify(prog, static_cast<uint64_t>(nr)), SECCOMP_RET_ALLOW)
        << "syscall " << nr;
  }
}

TEST(SeccompFilter, MmapRefinedByAnonymousFlag) {
  auto prog = build_seccomp_filter();
  uint64_t anon[6] = {0, 4096, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, ~0ull, 0};
  uint64_t file_backed[6] = {0, 4096, PROT_READ, MAP_PRIVATE, 3, 0};
  EXPECT_EQ(classify(prog, SYS_mmap, anon), SECCOMP_RET_ALLOW);
  EXPECT_EQ(classify(prog, SYS_mmap, file_backed), SECCOMP_RET_TRACE);
  // The table still reports mmap as intercepted; the refinement lives only
  // in the BPF program.
  EXPECT_TRUE(seccomp_filter_intercepts(SYS_mmap));
}

TEST(SeccompFilter, ForeignArchitectureIsKilled) {
  auto prog = build_seccomp_filter();
  const uint32_t action =
      simulate_seccomp_filter(prog, AUDIT_ARCH_I386, SYS_getpid, kZeroArgs);
  EXPECT_EQ(action, SECCOMP_RET_KILL_PROCESS);
}

TEST(SeccompFilter, InterceptTableIsSortedAndUnique) {
  const auto& table = seccomp_intercepted_syscalls();
  ASSERT_FALSE(table.empty());
  EXPECT_TRUE(std::is_sorted(table.begin(), table.end()));
  EXPECT_EQ(std::adjacent_find(table.begin(), table.end()), table.end());
}

// ---- end-to-end: install fallback and stop-count reduction ----

std::string helper_path() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  buf[n > 0 ? n : 0] = '\0';
  return path_join(path_dirname(buf), "helper_syscalls");
}

struct BoxedRun {
  int exit_code = -1;
  std::string out;
  SupervisorStats stats;
  DispatchMode effective = DispatchMode::kTraceAll;
};

BoxedRun run_scenario(const std::string& scenario, const std::string& dir,
                      DispatchMode dispatch, bool force_fallback) {
  BoxedRun run;
  TempDir state("secf-state");
  BoxOptions options;
  options.state_dir = state.path();
  options.provision_home = false;
  auto box = BoxContext::Create(*Identity::Parse("Tester"), options);
  if (!box.ok()) return run;
  UniqueFd out_fd(::memfd_create("secf-out", 0));
  ProcessRegistry registry;
  SandboxConfig config;
  config.dispatch = dispatch;
  config.force_dispatch_fallback = force_fallback;
  Supervisor supervisor(**box, registry, config);
  Supervisor::Stdio stdio{-1, out_fd.get(), -1};
  auto exit_code = supervisor.run({helper_path(), scenario, dir}, {}, stdio);
  if (!exit_code.ok()) return run;
  run.exit_code = *exit_code;
  char buf[1 << 14];
  off_t off = 0;
  while (true) {
    ssize_t n = ::pread(out_fd.get(), buf, sizeof(buf), off);
    if (n <= 0) break;
    run.out.append(buf, static_cast<size_t>(n));
    off += n;
  }
  run.stats = supervisor.stats();
  run.effective = supervisor.effective_dispatch();
  return run;
}

TEST(SeccompDispatch, InstallFailureFallsBackToTraceAll) {
  TempDir work("secf-work");
  ASSERT_TRUE(write_file(work.sub(".__acl"), "Tester rwldax\n").ok());
  BoxedRun run = run_scenario("rw", work.path(), DispatchMode::kSeccomp,
                              /*force_fallback=*/true);
  EXPECT_EQ(run.exit_code, 0) << run.out;
  EXPECT_NE(run.out.find("ok"), std::string::npos);
  EXPECT_EQ(run.effective, DispatchMode::kTraceAll);
  EXPECT_EQ(run.stats.seccomp_stops, 0u);
}

TEST(SeccompDispatch, SeccompModeStopsStrictlyLessThanTraceAll) {
  if (!seccomp_trace_supported()) {
    GTEST_SKIP() << "kernel lacks SECCOMP_RET_TRACE";
  }
  TempDir work_trace("secf-trace"), work_seccomp("secf-seccomp");
  ASSERT_TRUE(
      write_file(work_trace.sub(".__acl"), "Tester rwldax\n").ok());
  ASSERT_TRUE(
      write_file(work_seccomp.sub(".__acl"), "Tester rwldax\n").ok());

  BoxedRun trace = run_scenario("rw", work_trace.path(),
                                DispatchMode::kTraceAll, false);
  BoxedRun seccomp = run_scenario("rw", work_seccomp.path(),
                                  DispatchMode::kSeccomp, false);
  ASSERT_EQ(trace.exit_code, 0) << trace.out;
  ASSERT_EQ(seccomp.exit_code, 0) << seccomp.out;

  EXPECT_EQ(seccomp.effective, DispatchMode::kSeccomp);
  EXPECT_GT(seccomp.stats.seccomp_stops, 0u);
  // Nullified calls skip their syscall-exit stop at the seccomp stop.
  EXPECT_GT(seccomp.stats.exit_stops_elided, 0u);
  // The whole point: pass-through traffic (startup futex/brk/mprotect and
  // friends) never reaches the tracer, so strictly fewer traps.
  EXPECT_LT(seccomp.stats.syscalls_trapped, trace.stats.syscalls_trapped);
  EXPECT_EQ(trace.stats.seccomp_stops, 0u);
}

}  // namespace
}  // namespace ibox
