// The reference-monitor tests: every rule from paper sections 3 and 6.
#include "vfs/local_driver.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fs.h"
#include "util/path.h"

namespace ibox {
namespace {

Identity id(const std::string& text) { return *Identity::Parse(text); }

class LocalDriverTest : public ::testing::Test {
 protected:
  LocalDriverTest() : tmp_("driver"), driver_(tmp_.path()) {}

  // Creates a governed directory with the given ACL text.
  void governed(const std::string& box_dir, const std::string& acl_text) {
    ASSERT_TRUE(make_dirs(tmp_.path() + box_dir).ok());
    auto acl = Acl::Parse(acl_text);
    ASSERT_TRUE(acl.ok());
    ASSERT_TRUE(driver_.stamp_acl(box_dir, *acl).ok());
  }

  void host_file(const std::string& box_path, const std::string& contents,
                 int mode = 0644) {
    ASSERT_TRUE(make_dirs(path_dirname(tmp_.path() + box_path)).ok());
    ASSERT_TRUE(write_file(tmp_.path() + box_path, contents, mode).ok());
  }

  std::string read_via(const Identity& who, const std::string& path) {
    auto handle = driver_.open(who, path, O_RDONLY, 0);
    if (!handle.ok()) return "<" + std::to_string(handle.error_code()) + ">";
    char buf[256];
    auto got = (*handle)->pread(buf, sizeof(buf), 0);
    if (!got.ok()) return "<read-error>";
    return std::string(buf, *got);
  }

  TempDir tmp_;
  LocalDriver driver_;
  const Identity fred_ = id("globus:/O=UnivNowhere/CN=Fred");
  const Identity george_ = id("globus:/O=UnivNowhere/CN=George");
  const Identity eve_ = id("Eve");
};

// ---------------------------------------------------------- open / read --

TEST_F(LocalDriverTest, GovernedOpenRespectsAcl) {
  governed("/work", "globus:/O=UnivNowhere/CN=Fred rwlax\n"
                    "globus:/O=UnivNowhere/* rl\n");
  host_file("/work/data.txt", "payload");

  EXPECT_EQ(read_via(fred_, "/work/data.txt"), "payload");
  EXPECT_EQ(read_via(george_, "/work/data.txt"), "payload");  // wildcard rl
  EXPECT_EQ(read_via(eve_, "/work/data.txt"), "<13>");        // EACCES

  // Write requires w: George (rl) may not create or modify.
  EXPECT_EQ(driver_.open(george_, "/work/new.txt", O_WRONLY | O_CREAT, 0644)
                .error_code(),
            EACCES);
  EXPECT_EQ(
      driver_.open(george_, "/work/data.txt", O_WRONLY, 0).error_code(),
      EACCES);
  EXPECT_TRUE(
      driver_.open(fred_, "/work/new.txt", O_WRONLY | O_CREAT, 0644).ok());
}

TEST_F(LocalDriverTest, RdwrNeedsBothRights) {
  governed("/w", "Alice rl\nBob rwl\n");
  host_file("/w/f", "x");
  EXPECT_EQ(driver_.open(id("Alice"), "/w/f", O_RDWR, 0).error_code(),
            EACCES);
  EXPECT_TRUE(driver_.open(id("Bob"), "/w/f", O_RDWR, 0).ok());
}

TEST_F(LocalDriverTest, TruncAndAppendCountAsWrites) {
  governed("/w", "Reader rl\n");
  host_file("/w/f", "x");
  EXPECT_EQ(
      driver_.open(id("Reader"), "/w/f", O_RDONLY | O_TRUNC, 0).error_code(),
      EACCES);
}

TEST_F(LocalDriverTest, NobodyFallbackProtectsOwner) {
  // Ungoverned directory: Unix "other" bits decide (Figure 2's `secret`).
  host_file("/plain/secret", "top secret", 0600);
  host_file("/plain/public", "open data", 0644);
  EXPECT_EQ(read_via(fred_, "/plain/secret"), "<13>");
  EXPECT_EQ(read_via(fred_, "/plain/public"), "open data");
  // Creating in a non-world-writable ungoverned dir is denied.
  EXPECT_EQ(driver_.open(fred_, "/plain/new", O_WRONLY | O_CREAT, 0644)
                .error_code(),
            EACCES);
}

TEST_F(LocalDriverTest, OpenErrors) {
  governed("/w", "Fred rwlax\n");
  EXPECT_EQ(driver_.open(id("Fred"), "/w/none", O_RDONLY, 0).error_code(),
            ENOENT);
  host_file("/w/f", "x");
  EXPECT_EQ(driver_.open(id("Fred"), "/w/f", O_CREAT | O_EXCL | O_WRONLY,
                         0644)
                .error_code(),
            EEXIST);
  EXPECT_EQ(driver_.open(id("Fred"), "/w", O_WRONLY, 0).error_code(),
            EISDIR);
}

TEST_F(LocalDriverTest, AclFileIsUnreachable) {
  governed("/w", "Fred rwlax\n");
  EXPECT_EQ(driver_.open(id("Fred"), "/w/.__acl", O_RDONLY, 0).error_code(),
            EACCES);
  EXPECT_EQ(driver_.unlink(id("Fred"), "/w/.__acl").error_code(), EACCES);
  EXPECT_EQ(
      driver_.rename(id("Fred"), "/w/.__acl", "/w/stolen").error_code(),
      EACCES);
  EXPECT_EQ(driver_.link(id("Fred"), "/w/.__acl", "/w/alias").error_code(),
            EACCES);
}

// ------------------------------------------------------------- symlinks --

TEST_F(LocalDriverTest, SymlinkCheckedAtTargetDirectory) {
  // Garfinkel pitfall 2: permissions belong to the target's directory.
  governed("/open", "Fred rwlax\n");
  governed("/closed", "Admin rwlax\n");
  host_file("/closed/secret.txt", "hidden");
  // Box-absolute target: resolved within the export namespace.
  ASSERT_EQ(::symlink("/closed/secret.txt",
                      (tmp_.path() + "/open/alias").c_str()),
            0);
  // Fred has full rights in /open, but the *target* lives in /closed.
  EXPECT_EQ(read_via(id("Fred"), "/open/alias"), "<13>");
  EXPECT_EQ(read_via(id("Admin"), "/open/alias"), "hidden");
}

TEST_F(LocalDriverTest, SymlinkTargetsResolveInsideExport) {
  // An absolute symlink target is interpreted within the box namespace, so
  // links cannot escape the export root.
  governed("/w", "Fred rwlax\n");
  host_file("/w/inside.txt", "inside");
  ASSERT_EQ(::symlink("/w/inside.txt",
                      (tmp_.path() + "/w/abs-link").c_str()),
            0);
  EXPECT_EQ(read_via(id("Fred"), "/w/abs-link"), "inside");
  // "/etc/passwd" as a target resolves to <export>/etc/passwd (absent).
  ASSERT_EQ(::symlink("/etc/passwd",
                      (tmp_.path() + "/w/escape").c_str()),
            0);
  EXPECT_EQ(driver_.open(id("Fred"), "/w/escape", O_RDONLY, 0).error_code(),
            ENOENT);
}

TEST_F(LocalDriverTest, SymlinkLoopsReportEloop) {
  governed("/w", "Fred rwlax\n");
  ASSERT_EQ(::symlink("/w/loop-b", (tmp_.path() + "/w/loop-a").c_str()), 0);
  ASSERT_EQ(::symlink("/w/loop-a", (tmp_.path() + "/w/loop-b").c_str()), 0);
  EXPECT_EQ(driver_.open(id("Fred"), "/w/loop-a", O_RDONLY, 0).error_code(),
            ELOOP);
}

TEST_F(LocalDriverTest, LstatAndReadlinkDoNotFollow) {
  governed("/w", "Fred rwlax\n");
  host_file("/w/real", "data");
  ASSERT_EQ(::symlink("/w/real", (tmp_.path() + "/w/ln").c_str()), 0);
  auto st = driver_.lstat(id("Fred"), "/w/ln");
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(st->is_symlink());
  auto followed = driver_.stat(id("Fred"), "/w/ln");
  ASSERT_TRUE(followed.ok());
  EXPECT_TRUE(followed->is_regular());
  auto target = driver_.readlink(id("Fred"), "/w/ln");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ(*target, "/w/real");
}

TEST_F(LocalDriverTest, SymlinkCreationNeedsWrite) {
  governed("/w", "Fred rwlax\nGeorge rl\n");
  EXPECT_TRUE(driver_.symlink(id("Fred"), "target", "/w/l1").ok());
  EXPECT_EQ(driver_.symlink(id("George"), "target", "/w/l2").error_code(),
            EACCES);
}

// ------------------------------------------------------------ hard links --

TEST_F(LocalDriverTest, HardLinkToUnreadableFileRefused) {
  // "Parrot is obliged to prevent hard links to files that the user cannot
  // access."
  governed("/mine", "Fred rwlax\n");
  governed("/theirs", "Admin rwlax\n");
  host_file("/theirs/private.txt", "private");
  EXPECT_EQ(driver_.link(id("Fred"), "/theirs/private.txt", "/mine/steal")
                .error_code(),
            EACCES);
  // Linking one's own readable file works.
  host_file("/mine/own.txt", "own");
  EXPECT_TRUE(driver_.link(id("Fred"), "/mine/own.txt", "/mine/alias").ok());
  EXPECT_EQ(read_via(id("Fred"), "/mine/alias"), "own");
}

// ------------------------------------------------------ directory ops ----

TEST_F(LocalDriverTest, MkdirInheritAndReserve) {
  governed("/", "Fred wv(rwlax)\nGeorge v(rl)\n");
  // Fred holds w: inheriting mkdir.
  ASSERT_TRUE(driver_.mkdir(id("Fred"), "/byfred", 0755).ok());
  auto inherited = driver_.acl_store().load(tmp_.path() + "/byfred");
  ASSERT_TRUE(inherited.ok() && inherited->has_value());
  EXPECT_EQ((*inherited)->size(), 2u);  // copy of parent

  // George holds only v(rl): reserved mkdir with a fresh single-entry ACL.
  ASSERT_TRUE(driver_.mkdir(id("George"), "/bygeorge", 0755).ok());
  auto fresh = driver_.acl_store().load(tmp_.path() + "/bygeorge");
  ASSERT_TRUE(fresh.ok() && fresh->has_value());
  ASSERT_EQ((*fresh)->size(), 1u);
  EXPECT_TRUE((*fresh)->rights_for(id("George")).can_list());
  EXPECT_FALSE((*fresh)->rights_for(id("George")).can_write());
}

TEST_F(LocalDriverTest, MkdirUngovernedFallback) {
  ASSERT_TRUE(make_dirs(tmp_.path() + "/world", 0777).ok());
  ASSERT_EQ(::chmod((tmp_.path() + "/world").c_str(), 0777), 0);  // vs umask
  EXPECT_TRUE(driver_.mkdir(id("Fred"), "/world/sub", 0755).ok());
  ASSERT_TRUE(make_dirs(tmp_.path() + "/locked", 0755).ok());
  EXPECT_EQ(driver_.mkdir(id("Fred"), "/locked/sub", 0755).error_code(), EACCES);
}

TEST_F(LocalDriverTest, RmdirRemovesAclFileImplicitly) {
  governed("/", "Fred rwlax\n");
  ASSERT_TRUE(driver_.mkdir(id("Fred"), "/d", 0755).ok());
  // The governed child contains .__acl; rmdir must treat it as empty.
  EXPECT_TRUE(driver_.rmdir(id("Fred"), "/d").ok());
  EXPECT_FALSE(dir_exists(tmp_.path() + "/d"));
}

TEST_F(LocalDriverTest, RmdirNonEmptyFails) {
  governed("/", "Fred rwlax\n");
  ASSERT_TRUE(driver_.mkdir(id("Fred"), "/d", 0755).ok());
  host_file("/d/keep", "x");
  EXPECT_EQ(driver_.rmdir(id("Fred"), "/d").error_code(), ENOTEMPTY);
}

TEST_F(LocalDriverTest, UnlinkRules) {
  governed("/w", "Fred rwlax\nGeorge rl\n");
  host_file("/w/f", "x");
  EXPECT_EQ(driver_.unlink(id("George"), "/w/f").error_code(), EACCES);
  EXPECT_TRUE(driver_.unlink(id("Fred"), "/w/f").ok());
  EXPECT_EQ(driver_.unlink(id("Fred"), "/w/f").error_code(), ENOENT);
  ASSERT_TRUE(driver_.mkdir(id("Fred"), "/w/d", 0755).ok());
  EXPECT_EQ(driver_.unlink(id("Fred"), "/w/d").error_code(), EISDIR);
}

TEST_F(LocalDriverTest, DeleteRightWithoutWrite) {
  governed("/w", "Janitor rld\n");
  host_file("/w/trash", "x");
  EXPECT_TRUE(driver_.unlink(id("Janitor"), "/w/trash").ok());
  EXPECT_EQ(driver_.open(id("Janitor"), "/w/new", O_WRONLY | O_CREAT, 0644)
                .error_code(),
            EACCES);
}

TEST_F(LocalDriverTest, RenameNeedsDeleteAndWrite) {
  governed("/a", "Fred rwlax\n");
  governed("/b", "Fred rl\n");
  host_file("/a/f", "x");
  // Target dir grants no w.
  EXPECT_EQ(driver_.rename(id("Fred"), "/a/f", "/b/f").error_code(), EACCES);
  governed("/c", "Fred rwlax\n");
  EXPECT_TRUE(driver_.rename(id("Fred"), "/a/f", "/c/f").ok());
  EXPECT_EQ(read_via(id("Fred"), "/c/f"), "x");
}

TEST_F(LocalDriverTest, ReaddirHidesAclAndNeedsList) {
  governed("/w", "Fred rwlax\nNoList x\n");
  host_file("/w/visible.txt", "x");
  auto entries = driver_.readdir(id("Fred"), "/w");
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 1u);
  EXPECT_EQ((*entries)[0].name, "visible.txt");
  EXPECT_EQ(driver_.readdir(id("NoList"), "/w").error_code(), EACCES);
}

TEST_F(LocalDriverTest, StatRequiresListInContainingDir) {
  governed("/w", "Fred rwlax\nBlind x\n");
  host_file("/w/f", "x");
  EXPECT_TRUE(driver_.stat(id("Fred"), "/w/f").ok());
  EXPECT_EQ(driver_.stat(id("Blind"), "/w/f").error_code(), EACCES);
}

// ------------------------------------------------------------- the rest --

TEST_F(LocalDriverTest, TruncateChmodUtimeNeedWrite) {
  governed("/w", "Fred rwlax\nGeorge rl\n");
  host_file("/w/f", "0123456789");
  EXPECT_TRUE(driver_.truncate(id("Fred"), "/w/f", 4).ok());
  EXPECT_EQ(read_via(id("Fred"), "/w/f"), "0123");
  EXPECT_EQ(driver_.truncate(id("George"), "/w/f", 1).error_code(), EACCES);
  EXPECT_TRUE(driver_.chmod(id("Fred"), "/w/f", 0755).ok());
  EXPECT_EQ(driver_.chmod(id("George"), "/w/f", 0777).error_code(), EACCES);
  EXPECT_TRUE(driver_.utime(id("Fred"), "/w/f", 1000, 2000).ok());
  auto st = driver_.stat(id("Fred"), "/w/f");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->mtime_sec, 2000u);
}

TEST_F(LocalDriverTest, AccessProbes) {
  governed("/w", "Fred rwlax\nGeorge rlx\n");
  host_file("/w/prog", "#!/bin/sh\n", 0755);
  EXPECT_TRUE(driver_.access(id("Fred"), "/w/prog", Access::kExecute).ok());
  EXPECT_TRUE(driver_.access(id("George"), "/w/prog", Access::kExecute).ok());
  EXPECT_EQ(driver_.access(id("George"), "/w/prog", Access::kWrite)
                .error_code(),
            EACCES);
  EXPECT_EQ(driver_.access(eve_, "/w/prog", Access::kRead).error_code(),
            EACCES);
}

TEST_F(LocalDriverTest, GetSetAcl) {
  governed("/w", "Fred rwlax\nGeorge rl\n");
  auto text = driver_.getacl(id("Fred"), "/w");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Fred"), std::string::npos);

  // Fred (admin) grants Eve write access — the sharing story.
  ASSERT_TRUE(driver_.setacl(id("Fred"), "/w", "Eve", "rwl").ok());
  host_file("/w/f", "shared");
  EXPECT_EQ(read_via(eve_, "/w/f"), "shared");

  // George (no admin right) may not.
  EXPECT_EQ(driver_.setacl(id("George"), "/w", "George", "rwlax")
                .error_code(),
            EACCES);
  // Malformed rights are EINVAL.
  EXPECT_EQ(driver_.setacl(id("Fred"), "/w", "X", "zz").error_code(), EINVAL);
}

TEST_F(LocalDriverTest, PathsCannotClimbOutOfExport) {
  governed("/", "Fred rwlax\n");
  // ".." components are cleaned lexically before translation.
  auto st = driver_.stat(fred_, "/../../etc/passwd");
  // Resolves to <export>/etc/passwd which does not exist.
  EXPECT_EQ(st.error_code(), ENOENT);
}

TEST_F(LocalDriverTest, FileHandleIo) {
  governed("/w", "Fred rwlax\n");
  auto handle = driver_.open(id("Fred"), "/w/io.bin", O_RDWR | O_CREAT, 0644);
  ASSERT_TRUE(handle.ok());
  auto wrote = (*handle)->pwrite("hello world", 11, 0);
  ASSERT_TRUE(wrote.ok());
  EXPECT_EQ(*wrote, 11u);
  char buf[16] = {0};
  auto got = (*handle)->pread(buf, sizeof(buf), 6);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(buf, *got), "world");
  ASSERT_TRUE((*handle)->ftruncate(5).ok());
  auto st = (*handle)->fstat();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 5u);
  EXPECT_TRUE((*handle)->fsync().ok());
  EXPECT_GE((*handle)->native_fd(), 0);
}

}  // namespace
}  // namespace ibox
