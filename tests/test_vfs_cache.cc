// VfsCache unit behavior (TTL, capacity wipe, invalidation granularity) and
// the coherence contract at the Vfs facade: every mutation path must make
// the next lookup see fresh state even with a TTL far too long to save it.
#include "vfs/vfs_cache.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include "box/box_context.h"
#include "box/process_registry.h"
#include "sandbox/supervisor.h"
#include "util/fs.h"
#include "vfs/local_driver.h"
#include "vfs/vfs.h"

namespace ibox {
namespace {

VfsStat regular(uint64_t size) {
  VfsStat st;
  st.size = size;
  st.mode = 0100644;
  return st;
}

TEST(VfsCacheUnit, StatRoundTripsPositiveAndNegative) {
  VfsCache cache;
  EXPECT_FALSE(cache.lookup_stat("/a", true).has_value());
  cache.store_stat("/a", true, Result<VfsStat>(regular(7)));
  cache.store_stat("/gone", true, Result<VfsStat>(Error(ENOENT)));

  auto hit = cache.lookup_stat("/a", true);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->ok());
  EXPECT_EQ((**hit).size, 7u);

  auto negative = cache.lookup_stat("/gone", true);
  ASSERT_TRUE(negative.has_value());
  EXPECT_EQ(negative->error_code(), ENOENT);

  EXPECT_EQ(cache.stats().stat_hits, 2u);
  EXPECT_EQ(cache.stats().stat_misses, 1u);
}

TEST(VfsCacheUnit, FollowAndNoFollowAreIndependentSlots) {
  VfsCache cache;
  cache.store_stat("/link", /*follow=*/true, Result<VfsStat>(regular(9)));
  EXPECT_TRUE(cache.lookup_stat("/link", true).has_value());
  EXPECT_FALSE(cache.lookup_stat("/link", false).has_value());
}

TEST(VfsCacheUnit, AccessDecisionsPerRight) {
  VfsCache cache;
  cache.store_access("/f", Access::kRead, Status::Ok());
  cache.store_access("/f", Access::kWrite, Status::Errno(EACCES));

  auto read = cache.lookup_access("/f", Access::kRead);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(read->ok());
  auto write = cache.lookup_access("/f", Access::kWrite);
  ASSERT_TRUE(write.has_value());
  EXPECT_EQ(write->error_code(), EACCES);
  // A right never stored stays a miss even though the path entry exists.
  EXPECT_FALSE(cache.lookup_access("/f", Access::kAdmin).has_value());
}

TEST(VfsCacheUnit, TtlExpiresEntries) {
  VfsCacheConfig config;
  config.ttl_ms = 1;
  VfsCache cache(config);
  cache.store_stat("/a", true, Result<VfsStat>(regular(1)));
  // CLOCK_MONOTONIC_COARSE granularity can reach a few ms; sleep well past.
  ::usleep(50 * 1000);
  EXPECT_FALSE(cache.lookup_stat("/a", true).has_value());
}

TEST(VfsCacheUnit, InvalidateDropsPathAndParent) {
  VfsCache cache;
  cache.store_stat("/d", true, Result<VfsStat>(regular(0)));
  cache.store_stat("/d/f", true, Result<VfsStat>(regular(1)));
  cache.store_stat("/other", true, Result<VfsStat>(regular(2)));

  cache.invalidate("/d/f");
  EXPECT_FALSE(cache.lookup_stat("/d/f", true).has_value());
  EXPECT_FALSE(cache.lookup_stat("/d", true).has_value());
  EXPECT_TRUE(cache.lookup_stat("/other", true).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);

  cache.invalidate_all();
  EXPECT_FALSE(cache.lookup_stat("/other", true).has_value());
}

TEST(VfsCacheUnit, CapacityWipesInsteadOfEvicting) {
  VfsCacheConfig config;
  config.capacity = 2;
  VfsCache cache(config);
  cache.store_stat("/a", true, Result<VfsStat>(regular(1)));
  cache.store_stat("/b", true, Result<VfsStat>(regular(2)));
  cache.store_stat("/c", true, Result<VfsStat>(regular(3)));  // wipe, then /c
  EXPECT_FALSE(cache.lookup_stat("/a", true).has_value());
  EXPECT_FALSE(cache.lookup_stat("/b", true).has_value());
  EXPECT_TRUE(cache.lookup_stat("/c", true).has_value());
}

// ---- facade coherence: mutations must beat a 10-second TTL ----

class VfsCacheCoherence : public ::testing::Test {
 protected:
  VfsCacheCoherence() : root_("vfs-cache-root") {
    (void)write_file(root_.sub(".__acl"), "Visitor rwldax\n");
    auto mounts = std::make_unique<MountTable>(
        std::make_unique<LocalDriver>(root_.path()));
    vfs_ = std::make_unique<Vfs>(*Identity::Parse("Visitor"),
                                 std::move(mounts));
    VfsCacheConfig config;
    config.ttl_ms = 10 * 1000;  // far beyond the test runtime
    vfs_->enable_cache(config);
  }

  void put(const std::string& box_path, const std::string& text) {
    auto handle = vfs_->open(box_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_TRUE(handle.ok()) << box_path;
    ASSERT_TRUE((*handle)->pwrite(text.data(), text.size(), 0).ok());
  }

  TempDir root_;
  std::unique_ptr<Vfs> vfs_;
};

TEST_F(VfsCacheCoherence, CacheServesRepeatedStats) {
  put("/f", "abc");
  ASSERT_TRUE(vfs_->stat("/f").ok());
  ASSERT_TRUE(vfs_->stat("/f").ok());
  // Not a vacuous suite: the second stat was answered from cache.
  EXPECT_GE(vfs_->cache()->stats().stat_hits, 1u);
}

TEST_F(VfsCacheCoherence, TruncateInvalidatesCachedSize) {
  put("/f", "abc");
  auto before = vfs_->stat("/f");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size, 3u);
  ASSERT_TRUE(vfs_->truncate("/f", 1).ok());
  auto after = vfs_->stat("/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size, 1u);
}

TEST_F(VfsCacheCoherence, UnlinkInvalidatesPositiveEntry) {
  put("/f", "x");
  ASSERT_TRUE(vfs_->stat("/f").ok());
  ASSERT_TRUE(vfs_->unlink("/f").ok());
  EXPECT_EQ(vfs_->stat("/f").error_code(), ENOENT);
}

TEST_F(VfsCacheCoherence, CreateInvalidatesNegativeEntry) {
  EXPECT_EQ(vfs_->stat("/ghost").error_code(), ENOENT);
  EXPECT_EQ(vfs_->stat("/ghost").error_code(), ENOENT);  // cached negative
  put("/ghost", "now real");
  auto st = vfs_->stat("/ghost");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 8u);
}

TEST_F(VfsCacheCoherence, RenameInvalidatesBothNames) {
  put("/old", "data");
  ASSERT_TRUE(vfs_->stat("/old").ok());
  EXPECT_EQ(vfs_->stat("/new").error_code(), ENOENT);
  ASSERT_TRUE(vfs_->rename("/old", "/new").ok());
  EXPECT_EQ(vfs_->stat("/old").error_code(), ENOENT);
  EXPECT_TRUE(vfs_->stat("/new").ok());
}

TEST_F(VfsCacheCoherence, SetaclFlipsCachedAccessDecision) {
  ASSERT_TRUE(vfs_->mkdir("/sub", 0755).ok());
  put("/sub/f", "x");
  ASSERT_TRUE(vfs_->access("/sub/f", Access::kWrite).ok());
  ASSERT_TRUE(vfs_->access("/sub/f", Access::kWrite).ok());  // cached allow
  // Revoke our own write right; the cached decision must not survive.
  ASSERT_TRUE(vfs_->setacl("/sub", "Visitor", "rl").ok());
  EXPECT_FALSE(vfs_->access("/sub/f", Access::kWrite).ok());
  EXPECT_TRUE(vfs_->access("/sub/f", Access::kRead).ok());
}

TEST_F(VfsCacheCoherence, HandleWritesReportedViaInvalidateCached) {
  put("/f", "ab");
  auto before = vfs_->stat("/f");
  ASSERT_TRUE(before.ok());
  // A descriptor-level write the facade never sees (the supervisor's case).
  auto handle = vfs_->open("/f", O_WRONLY, 0);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE((*handle)->pwrite("abcd", 4, 0).ok());
  vfs_->invalidate_cached("/f");
  auto after = vfs_->stat("/f");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size, 4u);
}

// ---- boxed end-to-end: supervisor handlers keep the cache coherent ----

TEST(VfsCacheBoxed, MutatingShellPipelineSeesItsOwnWrites) {
  TempDir work("cache-box-work");
  ASSERT_TRUE(write_file(work.sub(".__acl"), "Tester rwldax\n").ok());
  TempDir state("cache-box-state");
  BoxOptions options;
  options.state_dir = state.path();
  options.provision_home = false;
  // TTL far beyond the run: only explicit invalidation can keep this
  // pipeline coherent (write → rename → read-back of the new name).
  options.vfs_cache_ttl_ms = 10 * 1000;
  auto box = BoxContext::Create(*Identity::Parse("Tester"), options);
  ASSERT_TRUE(box.ok());

  UniqueFd out_fd(::memfd_create("cache-box-out", 0));
  ProcessRegistry registry;
  SandboxConfig config;
  config.dispatch = DispatchMode::kSeccomp;  // falls back without kernel aid
  config.initial_cwd = work.path();
  Supervisor supervisor(**box, registry, config);
  Supervisor::Stdio stdio{-1, out_fd.get(), -1};
  auto exit_code = supervisor.run(
      {"/bin/sh", "-c", "echo x > f && mv f g && cat g"}, {}, stdio);
  ASSERT_TRUE(exit_code.ok()) << exit_code.error().message();
  char buf[256] = {0};
  ssize_t n = ::pread(out_fd.get(), buf, sizeof(buf) - 1, 0);
  EXPECT_EQ(*exit_code, 0) << buf;
  ASSERT_GT(n, 0);
  EXPECT_EQ(std::string(buf), "x\n");
  // The supervisor enabled the cache from BoxOptions and exercised it.
  ASSERT_NE((*box)->vfs().cache(), nullptr);
  const auto& stats = (*box)->vfs().cache()->stats();
  EXPECT_GT(stats.invalidations, 0u);
}

}  // namespace
}  // namespace ibox
