// Community authorization service and server admission policies.
#include "auth/cas.h"

#include <gtest/gtest.h>

#include "auth/sim_gsi.h"
#include "chirp/client.h"
#include "chirp/server.h"
#include "util/fs.h"

namespace ibox {
namespace {

Identity id(const std::string& text) { return *Identity::Parse(text); }

TEST(Cas, MembershipWithPatterns) {
  CommunityAuthorizationService cas("cas-secret");
  ASSERT_TRUE(cas.add_member("cms", "globus:/O=CERN/*").ok());
  ASSERT_TRUE(cas.add_member("cms", "globus:/O=UnivNowhere/CN=Fred").ok());
  ASSERT_TRUE(cas.add_member("atlas", "globus:/O=Elsewhere/*").ok());

  EXPECT_TRUE(cas.is_member("cms", id("globus:/O=CERN/CN=Anyone")));
  EXPECT_TRUE(cas.is_member("cms", id("globus:/O=UnivNowhere/CN=Fred")));
  EXPECT_FALSE(cas.is_member("cms", id("globus:/O=UnivNowhere/CN=George")));
  EXPECT_FALSE(cas.is_member("atlas", id("globus:/O=CERN/CN=Anyone")));
  EXPECT_FALSE(cas.is_member("nonexistent", id("anyone")));
}

TEST(Cas, AddRemoveValidation) {
  CommunityAuthorizationService cas("s");
  EXPECT_EQ(cas.add_member("c", "bad pattern").error_code(), EINVAL);
  EXPECT_EQ(cas.add_member("bad community", "ok").error_code(), EINVAL);
  ASSERT_TRUE(cas.add_member("c", "x*").ok());
  ASSERT_TRUE(cas.add_member("c", "x*").ok());  // idempotent
  EXPECT_EQ(cas.members("c").size(), 1u);
  EXPECT_TRUE(cas.remove_member("c", "x*").ok());
  EXPECT_EQ(cas.remove_member("c", "x*").error_code(), ENOENT);
  EXPECT_EQ(cas.remove_member("ghost", "x*").error_code(), ENOENT);
  EXPECT_EQ(cas.communities(), (std::vector<std::string>{"c"}));
}

TEST(Cas, SignedSnapshotRoundTrip) {
  CommunityAuthorizationService cas("community-key");
  ASSERT_TRUE(cas.add_member("cms", "globus:/O=CERN/*").ok());
  ASSERT_TRUE(cas.add_member("cms", "unix:operator").ok());
  auto snapshot = cas.export_signed("cms");
  ASSERT_TRUE(snapshot.ok());

  auto imported =
      CommunityAuthorizationService::import_signed(*snapshot, "community-key");
  ASSERT_TRUE(imported.ok());
  ASSERT_EQ(imported->size(), 2u);
  auto policy = make_admission_policy(std::move(*imported));
  EXPECT_TRUE(policy(id("globus:/O=CERN/CN=Sue")).ok());
  EXPECT_EQ(policy(id("stranger")).error_code(), EACCES);

  // Tampered snapshot or wrong key: rejected.
  EXPECT_EQ(CommunityAuthorizationService::import_signed(*snapshot,
                                                         "wrong-key")
                .error_code(),
            EKEYREJECTED);
  std::string tampered = *snapshot;
  tampered.insert(4, "evil:*\n");
  EXPECT_EQ(
      CommunityAuthorizationService::import_signed(tampered, "community-key")
          .error_code(),
      EKEYREJECTED);
  EXPECT_EQ(cas.export_signed("ghost").error_code(), ENOENT);
}

TEST(Cas, ChirpServerAdmission) {
  constexpr int64_t kNow = 1800000000;
  CertificateAuthority ca("CA", "s");
  CommunityAuthorizationService cas("cas-key");
  ASSERT_TRUE(cas.add_member("experiment", "globus:/O=U/CN=Fred").ok());

  TempDir export_dir("cas-export");
  ChirpServerOptions options;
  options.export_root = export_dir.path();
  GsiTrustStore trust;
  trust.trust("CA", "s");
  options.auth_methods.push_back(AuthMethodConfig::Gsi(std::move(trust)));
  options.clock = [] { return kNow; };
  options.admission = make_admission_policy(cas, "experiment");
  options.root_acl_text = "globus:/O=U/* rwlax\n";
  auto server = ChirpServer::Start(options);
  ASSERT_TRUE(server.ok());

  // Fred: valid certificate AND community member -> admitted.
  auto fred_data = ca.issue("/O=U/CN=Fred", 3600, kNow);
  GsiCredential fred_cred(fred_data);
  ChirpClientOptions fred_options;
  fred_options.port = (*server)->port();
  fred_options.credentials = {&fred_cred};
  auto fred = ChirpClient::Connect(fred_options);
  ASSERT_TRUE(fred.ok());
  EXPECT_TRUE((*fred)->whoami().ok());

  // George: valid certificate but NOT a member -> the handshake denies.
  auto george_data = ca.issue("/O=U/CN=George", 3600, kNow);
  GsiCredential george_cred(george_data);
  ChirpClientOptions george_options;
  george_options.port = (*server)->port();
  george_options.credentials = {&george_cred};
  auto george = ChirpClient::Connect(george_options);
  EXPECT_FALSE(george.ok());

  // Policy updates take effect for new connections.
  ASSERT_TRUE(cas.add_member("experiment", "globus:/O=U/CN=George").ok());
  auto george2 = ChirpClient::Connect(george_options);
  EXPECT_TRUE(george2.ok());
}

}  // namespace
}  // namespace ibox
